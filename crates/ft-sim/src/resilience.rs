//! Proposition 5.2 checking: does a schedule really survive ε failures?
//!
//! The paper argues (Proposition 5.2) that CAFT schedules are valid and
//! resist ε failures. This module checks the claim *operationally*: replay
//! the schedule under failure patterns and verify every task still
//! completes a replica. For `C(m, ε)` small enough the check is exhaustive
//! over all subsets of at most ε processors; beyond the cap it samples.
//!
//! This is also the instrument that surfaces any gap between the paper's
//! informal proof and the algorithm as specified (see EXPERIMENTS.md): a
//! counterexample, when found, is reported with its exact failure pattern.

use crate::replay::replay;
use crate::scenario::FaultScenario;
use ft_model::FtSchedule;
use ft_platform::{Instance, ProcId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of a resilience audit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Failure patterns tested.
    pub scenarios_tested: usize,
    /// Whether the sweep covered every subset of size ≤ ε.
    pub exhaustive: bool,
    /// Failure patterns under which some task completed no replica.
    pub counterexamples: Vec<Vec<ProcId>>,
}

impl ResilienceReport {
    /// True if no failure pattern broke the schedule.
    pub fn resilient(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Checks that the schedule completes under every failure pattern of at
/// most `eps` processors. Exhaustive when the number of subsets of size
/// exactly `eps` is at most `max_exhaustive`; otherwise samples
/// `max_exhaustive` random patterns of size `eps`.
///
/// (Subsets smaller than ε are dominated: killing fewer processors can only
/// help, because a dead processor's work is a strict subset. They are still
/// enumerated in exhaustive mode for completeness.)
pub fn check_resilience(
    inst: &Instance,
    sched: &FtSchedule,
    eps: usize,
    max_exhaustive: usize,
) -> ResilienceReport {
    let m = inst.num_procs();
    let exact = binomial(m, eps.min(m));
    let mut counterexamples = Vec::new();
    let mut tested = 0usize;
    if exact <= max_exhaustive {
        // Enumerate all subsets of size 1..=eps.
        for k in 1..=eps.min(m) {
            let mut subset: Vec<usize> = (0..k).collect();
            loop {
                let procs: Vec<ProcId> = subset.iter().map(|&i| ProcId::from_index(i)).collect();
                let out = replay(inst, sched, &FaultScenario::procs(&procs));
                tested += 1;
                if !out.completed() {
                    counterexamples.push(procs);
                }
                if !next_combination(&mut subset, m) {
                    break;
                }
            }
        }
        ResilienceReport {
            scenarios_tested: tested,
            exhaustive: true,
            counterexamples,
        }
    } else {
        let mut rng = StdRng::seed_from_u64(0xFACADE);
        for _ in 0..max_exhaustive {
            let sc = FaultScenario::random(m, eps, &mut rng);
            let out = replay(inst, sched, &sc);
            tested += 1;
            if !out.completed() {
                counterexamples.push(sc.dead().to_vec());
            }
        }
        ResilienceReport {
            scenarios_tested: tested,
            exhaustive: false,
            counterexamples,
        }
    }
}

/// Advances `subset` to the next k-combination of `0..m`; false when done.
fn next_combination(subset: &mut [usize], m: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < m - (k - i) {
            subset[i] += 1;
            for j in (i + 1)..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1usize;
    for i in 0..k {
        num = num.saturating_mul(n - i) / (i + 1);
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_algos::{caft, ftsa, CommModel};
    use ft_graph::gen::{fork, random_layered, RandomDagParams};
    use ft_platform::{random_instance, ExecMatrix, Platform, PlatformParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combination_iterator_is_complete() {
        let mut c = vec![0usize, 1];
        let mut seen = vec![c.clone()];
        while next_combination(&mut c, 4) {
            seen.push(c.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(4, 5), 0);
    }

    #[test]
    fn ftsa_is_resilient_exhaustively() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = random_layered(&RandomDagParams::default().with_tasks(25), &mut rng);
        let inst = random_instance(g, &PlatformParams::default(), 1.0, &mut rng);
        for eps in [1usize, 2] {
            let s = ftsa(&inst, eps, CommModel::OnePort, 0);
            let rep = check_resilience(&inst, &s, eps, 10_000);
            assert!(rep.exhaustive);
            assert!(
                rep.resilient(),
                "FTSA eps {eps} broken by {:?}",
                rep.counterexamples.first()
            );
        }
    }

    #[test]
    fn caft_resilient_on_forks() {
        // On outforests the one-to-one chains are provably disjoint.
        let mut rng = StdRng::seed_from_u64(42);
        let g = fork(10, 1.0..=2.0, 1.0..=3.0, &mut rng);
        let v = g.num_tasks();
        let inst = Instance::new(
            g,
            Platform::uniform_clique(8, 1.0),
            ExecMatrix::from_fn(v, 8, |_, _| 1.0),
        );
        for eps in [1usize, 2] {
            let s = caft(&inst, eps, CommModel::OnePort, 0);
            let rep = check_resilience(&inst, &s, eps, 10_000);
            assert!(
                rep.resilient(),
                "eps {eps}: {:?}",
                rep.counterexamples.first()
            );
        }
    }

    #[test]
    fn unreplicated_schedule_is_fragile() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = random_layered(&RandomDagParams::default().with_tasks(20), &mut rng);
        let inst = random_instance(g, &PlatformParams::default(), 1.0, &mut rng);
        let s = caft(&inst, 0, CommModel::OnePort, 0);
        // ε = 0 schedule, audited against 1 failure: must break (some
        // processor hosts at least one task).
        let rep = check_resilience(&inst, &s, 1, 10_000);
        assert!(!rep.resilient());
    }

    #[test]
    fn sampled_mode_kicks_in_beyond_cap() {
        let mut rng = StdRng::seed_from_u64(44);
        let g = random_layered(&RandomDagParams::default().with_tasks(15), &mut rng);
        let inst = random_instance(g, &PlatformParams::default(), 1.0, &mut rng);
        let s = ftsa(&inst, 2, CommModel::OnePort, 0);
        let rep = check_resilience(&inst, &s, 2, 10);
        assert!(!rep.exhaustive);
        assert_eq!(rep.scenarios_tested, 10);
        assert!(rep.resilient());
    }
}

#[cfg(test)]
mod hardened_resilience {
    use super::*;
    use ft_algos::{caft_hardened, CommModel};
    use ft_graph::gen::{random_layered, RandomDagParams};
    use ft_platform::{random_instance, PlatformParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The headline property of the hardened extension: exhaustive strict
    /// (no fail-over) resilience on the deep random graphs where plain
    /// CAFT's one-to-one chains starve (EXPERIMENTS.md, "Prop. 5.2
    /// revisited").
    #[test]
    fn hardened_caft_is_strictly_resilient() {
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..3 {
            let g = random_layered(&RandomDagParams::default().with_tasks(60), &mut rng);
            let inst = random_instance(g, &PlatformParams::default(), 1.0, &mut rng);
            for eps in [1usize, 2] {
                let s = caft_hardened(&inst, eps, CommModel::OnePort, 0);
                let rep = check_resilience(&inst, &s, eps, 10_000);
                assert!(rep.exhaustive);
                assert!(
                    rep.resilient(),
                    "eps {eps} broken by {:?}",
                    rep.counterexamples.first()
                );
            }
        }
    }
}
