//! Fault scenarios: which processors fail.
//!
//! The paper's model is fail-silent / fail-stop (§1, §2): a failed
//! processor computes nothing and sends nothing, and failures are
//! permanent. We model the adversarial worst case for a static schedule —
//! processors dead from time 0 — so every replica and every message of a
//! dead processor is lost (DESIGN.md §2).

use ft_platform::ProcId;
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of crashed processors.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultScenario {
    dead: Vec<ProcId>,
}

impl FaultScenario {
    /// No failures.
    pub fn none() -> Self {
        FaultScenario { dead: Vec::new() }
    }

    /// The given processors fail (deduplicated, sorted).
    pub fn procs(procs: &[ProcId]) -> Self {
        let mut dead = procs.to_vec();
        dead.sort_unstable();
        dead.dedup();
        FaultScenario { dead }
    }

    /// `k` distinct processors chosen uniformly among `m` (the paper's §6
    /// crash drawing: "processors that fail … are chosen uniformly").
    pub fn random<R: Rng>(m: usize, k: usize, rng: &mut R) -> Self {
        assert!(k <= m, "cannot fail {k} of {m} processors");
        let mut dead: Vec<ProcId> = sample(rng, m, k)
            .into_iter()
            .map(ProcId::from_index)
            .collect();
        dead.sort_unstable();
        FaultScenario { dead }
    }

    /// True if `p` is dead in this scenario.
    #[inline]
    pub fn is_dead(&self, p: ProcId) -> bool {
        self.dead.binary_search(&p).is_ok()
    }

    /// Number of failed processors.
    #[inline]
    pub fn num_failures(&self) -> usize {
        self.dead.len()
    }

    /// The failed processors, sorted.
    pub fn dead(&self) -> &[ProcId] {
        &self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_kills_nobody() {
        let s = FaultScenario::none();
        assert_eq!(s.num_failures(), 0);
        assert!(!s.is_dead(ProcId(0)));
    }

    #[test]
    fn procs_dedup_and_sort() {
        let s = FaultScenario::procs(&[ProcId(3), ProcId(1), ProcId(3)]);
        assert_eq!(s.dead(), &[ProcId(1), ProcId(3)]);
        assert!(s.is_dead(ProcId(3)));
        assert!(!s.is_dead(ProcId(2)));
    }

    #[test]
    fn random_draws_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = FaultScenario::random(10, 3, &mut rng);
            assert_eq!(s.num_failures(), 3);
            assert!(s.dead().windows(2).all(|w| w[0] < w[1]));
            assert!(s.dead().iter().all(|p| p.index() < 10));
        }
    }

    #[test]
    #[should_panic]
    fn cannot_kill_more_than_platform() {
        let mut rng = StdRng::seed_from_u64(1);
        FaultScenario::random(3, 4, &mut rng);
    }
}
