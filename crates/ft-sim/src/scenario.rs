//! Fault scenarios: which processors fail, and when.
//!
//! The paper's model is fail-silent / fail-stop (§1, §2): a failed
//! processor computes nothing and sends nothing, and failures are
//! permanent. Two views of the same [`FaultScenario`] coexist:
//!
//! * the **static adversarial view** used by [`replay`](crate::replay()):
//!   every listed processor is treated as dead from time 0, so every
//!   replica and every message of a dead processor is lost (DESIGN.md §2).
//!   This is the worst case for a static schedule and the view under which
//!   ε-resilience (Proposition 5.2) is checked;
//! * the **timed view** used by the online engine in `ft-runtime`: each
//!   listed processor works normally until its [`crash
//!   time`](FaultScenario::crash_time) and is fail-stop dead afterwards.
//!
//! [`FaultScenario::procs`] and [`FaultScenario::random`] build the
//! historical t = 0 special case; [`FaultScenario::timed`] and
//! [`FaultScenario::random_timed`] attach strictly later crash times.

use ft_platform::ProcId;
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of crashed processors with their crash times.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    dead: Vec<ProcId>,
    /// Crash time of `dead[i]`; `0.0` is the adversarial dead-from-start
    /// case. Non-negative and finite.
    times: Vec<f64>,
}

impl FaultScenario {
    /// No failures.
    pub fn none() -> Self {
        FaultScenario {
            dead: Vec::new(),
            times: Vec::new(),
        }
    }

    /// The given processors fail at time 0 (deduplicated, sorted).
    pub fn procs(procs: &[ProcId]) -> Self {
        let mut dead = procs.to_vec();
        dead.sort_unstable();
        dead.dedup();
        let times = vec![0.0; dead.len()];
        FaultScenario { dead, times }
    }

    /// The given processors fail at the given times (deduplicated keeping
    /// the *earliest* time per processor, sorted by processor).
    ///
    /// # Panics
    /// Panics if a crash time is negative or non-finite.
    pub fn timed(crashes: &[(ProcId, f64)]) -> Self {
        for &(p, t) in crashes {
            assert!(t.is_finite() && t >= 0.0, "bad crash time {t} for {p}");
        }
        let mut sorted = crashes.to_vec();
        sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        sorted.dedup_by_key(|&mut (p, _)| p);
        let (dead, times) = sorted.into_iter().unzip();
        FaultScenario { dead, times }
    }

    /// `k` distinct processors chosen uniformly among `m` (the paper's §6
    /// crash drawing: "processors that fail … are chosen uniformly"),
    /// failing at time 0.
    pub fn random<R: Rng>(m: usize, k: usize, rng: &mut R) -> Self {
        Self::random_timed(m, k, |_| 0.0, rng)
    }

    /// `k` distinct uniformly-chosen processors, with the crash time of
    /// each drawn from `draw_time` (in choice order).
    pub fn random_timed<R: Rng>(
        m: usize,
        k: usize,
        mut draw_time: impl FnMut(&mut R) -> f64,
        rng: &mut R,
    ) -> Self {
        assert!(k <= m, "cannot fail {k} of {m} processors");
        let crashes: Vec<(ProcId, f64)> = sample(rng, m, k)
            .into_iter()
            .map(|i| (ProcId::from_index(i), draw_time(rng)))
            .collect();
        Self::timed(&crashes)
    }

    /// True if `p` fails in this scenario (at any time) — the static
    /// adversarial view.
    #[inline]
    pub fn is_dead(&self, p: ProcId) -> bool {
        self.dead.binary_search(&p).is_ok()
    }

    /// True if `p` has failed by time `t` (timed view; crashes take effect
    /// strictly after their instant, so work *finishing* at the crash time
    /// still completes).
    #[inline]
    pub fn is_dead_at(&self, p: ProcId, t: f64) -> bool {
        match self.crash_time(p) {
            Some(ct) => ct < t,
            None => false,
        }
    }

    /// The crash time of `p`, or `None` if it never fails.
    #[inline]
    pub fn crash_time(&self, p: ProcId) -> Option<f64> {
        self.dead.binary_search(&p).ok().map(|i| self.times[i])
    }

    /// The crash time of `p` as a deadline: `+∞` for processors that never
    /// fail (convenient for comparisons in event engines).
    #[inline]
    pub fn deadline(&self, p: ProcId) -> f64 {
        self.crash_time(p).unwrap_or(f64::INFINITY)
    }

    /// Number of failed processors.
    #[inline]
    pub fn num_failures(&self) -> usize {
        self.dead.len()
    }

    /// The failed processors, sorted.
    pub fn dead(&self) -> &[ProcId] {
        &self.dead
    }

    /// `(processor, crash time)` pairs, sorted by processor.
    pub fn crashes(&self) -> impl Iterator<Item = (ProcId, f64)> + '_ {
        self.dead.iter().copied().zip(self.times.iter().copied())
    }

    /// The earliest crash time, or `None` for a failure-free scenario.
    pub fn earliest_crash(&self) -> Option<f64> {
        self.times.iter().copied().reduce(f64::min)
    }

    /// True if every crash happens at time 0 (the historical adversarial
    /// special case; such scenarios behave identically under static replay
    /// and the online engine's `Absorb` policy).
    pub fn is_static(&self) -> bool {
        self.times.iter().all(|&t| t == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_kills_nobody() {
        let s = FaultScenario::none();
        assert_eq!(s.num_failures(), 0);
        assert!(!s.is_dead(ProcId(0)));
        assert_eq!(s.earliest_crash(), None);
        assert!(s.is_static());
    }

    #[test]
    fn procs_dedup_and_sort() {
        let s = FaultScenario::procs(&[ProcId(3), ProcId(1), ProcId(3)]);
        assert_eq!(s.dead(), &[ProcId(1), ProcId(3)]);
        assert!(s.is_dead(ProcId(3)));
        assert!(!s.is_dead(ProcId(2)));
        assert_eq!(s.crash_time(ProcId(3)), Some(0.0));
        assert!(s.is_static());
    }

    #[test]
    fn timed_keeps_earliest_per_proc() {
        let s = FaultScenario::timed(&[(ProcId(2), 7.5), (ProcId(0), 3.0), (ProcId(2), 4.0)]);
        assert_eq!(s.dead(), &[ProcId(0), ProcId(2)]);
        assert_eq!(s.crash_time(ProcId(2)), Some(4.0));
        assert_eq!(s.crash_time(ProcId(1)), None);
        assert_eq!(s.deadline(ProcId(1)), f64::INFINITY);
        assert_eq!(s.earliest_crash(), Some(3.0));
        assert!(!s.is_static());
    }

    #[test]
    fn timed_liveness_is_strict_after_the_crash() {
        let s = FaultScenario::timed(&[(ProcId(1), 5.0)]);
        assert!(
            !s.is_dead_at(ProcId(1), 5.0),
            "work finishing at τ completes"
        );
        assert!(s.is_dead_at(ProcId(1), 5.0 + 1e-9));
        assert!(!s.is_dead_at(ProcId(0), 1e12));
        // The static view still reports the processor as failed.
        assert!(s.is_dead(ProcId(1)));
    }

    #[test]
    fn random_draws_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = FaultScenario::random(10, 3, &mut rng);
            assert_eq!(s.num_failures(), 3);
            assert!(s.dead().windows(2).all(|w| w[0] < w[1]));
            assert!(s.dead().iter().all(|p| p.index() < 10));
            assert!(s.is_static());
        }
    }

    #[test]
    fn random_timed_draws_times() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = FaultScenario::random_timed(8, 4, |r| r.gen_range(1.0..=9.0), &mut rng);
        assert_eq!(s.num_failures(), 4);
        assert!(s.crashes().all(|(_, t)| (1.0..=9.0).contains(&t)));
        assert!(!s.is_static());
    }

    #[test]
    #[should_panic]
    fn cannot_kill_more_than_platform() {
        let mut rng = StdRng::seed_from_u64(1);
        FaultScenario::random(3, 4, &mut rng);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_crash_times() {
        FaultScenario::timed(&[(ProcId(0), -1.0)]);
    }
}
