//! Fault scenarios: which processors fail, when — and whether they reboot.
//!
//! The paper's model is fail-silent / fail-stop (§1, §2): a failed
//! processor computes nothing and sends nothing, and failures are
//! permanent. Two views of the same [`FaultScenario`] coexist:
//!
//! * the **static adversarial view** used by [`replay`](crate::replay()):
//!   every listed processor is treated as dead from time 0, so every
//!   replica and every message of a dead processor is lost (DESIGN.md §2).
//!   This is the worst case for a static schedule and the view under which
//!   ε-resilience (Proposition 5.2) is checked;
//! * the **timed view** used by the online engine in `ft-runtime`: each
//!   listed processor works normally until its [`crash
//!   time`](FaultScenario::crash_time) and is fail-stop dead afterwards —
//!   forever for a *permanent* crash, or until the end of its repair
//!   window for a *transient* one.
//!
//! [`FaultScenario::procs`] and [`FaultScenario::random`] build the
//! historical t = 0 special case; [`FaultScenario::timed`] and
//! [`FaultScenario::random_timed`] attach strictly later crash times;
//! [`FaultScenario::transient`] additionally attaches a repair time per
//! failure **epoch** — a processor may crash, reboot at
//! `crash + repair`, and crash again later (multiple epochs per
//! processor). A repair of `f64::INFINITY` is exactly a permanent crash,
//! and a scenario whose every repair is infinite behaves byte-identically
//! to the corresponding permanent scenario everywhere (the availability
//! identity pinned by `tests/timed_model.rs`; DESIGN.md §6).

use ft_platform::ProcId;
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of crashed processors with their crash times and, for transient
/// failures, their repair windows.
///
/// Serde is hand-rolled (not derived): the transient fields are omitted
/// when empty and tolerated when missing, so permanent-only scenarios
/// keep the exact pre-transient JSON shape and documents written by the
/// pre-transient code still deserialize.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultScenario {
    dead: Vec<ProcId>,
    /// First crash time of `dead[i]`; `0.0` is the adversarial
    /// dead-from-start case. Non-negative and finite.
    times: Vec<f64>,
    /// Repair duration of the first failure epoch of `dead[i]`
    /// (`f64::INFINITY` = permanent). Empty means every crash is
    /// permanent — the historical representation, kept so scenarios built
    /// by the pre-transient constructors compare and serialize unchanged.
    repairs: Vec<f64>,
    /// Failure epochs after the first, as `(proc, crash, repair)` sorted
    /// by processor then crash time. Only transient processors (finite
    /// earlier repairs) can relapse.
    relapses: Vec<(ProcId, f64, f64)>,
}

impl FaultScenario {
    /// No failures.
    pub fn none() -> Self {
        FaultScenario::default()
    }

    /// The given processors fail at time 0 (deduplicated, sorted).
    pub fn procs(procs: &[ProcId]) -> Self {
        let mut dead = procs.to_vec();
        dead.sort_unstable();
        dead.dedup();
        let times = vec![0.0; dead.len()];
        FaultScenario {
            dead,
            times,
            repairs: Vec::new(),
            relapses: Vec::new(),
        }
    }

    /// The given processors fail at the given times (deduplicated keeping
    /// the *earliest* time per processor, sorted by processor).
    ///
    /// # Panics
    /// Panics if a crash time is negative or non-finite.
    pub fn timed(crashes: &[(ProcId, f64)]) -> Self {
        for &(p, t) in crashes {
            assert!(t.is_finite() && t >= 0.0, "bad crash time {t} for {p}");
        }
        let mut sorted = crashes.to_vec();
        sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        sorted.dedup_by_key(|&mut (p, _)| p);
        let (dead, times) = sorted.into_iter().unzip();
        FaultScenario {
            dead,
            times,
            repairs: Vec::new(),
            relapses: Vec::new(),
        }
    }

    /// Transient (rebooting) failures: each `(proc, crash, repair)` entry
    /// is one failure **epoch** — the processor is down during
    /// `(crash, crash + repair)` and up again at the reboot instant
    /// `crash + repair` (crashes take effect strictly after their time,
    /// reboots exactly at theirs). A repair of `f64::INFINITY` makes the
    /// epoch permanent; a scenario whose every repair is infinite is
    /// normalized to the permanent representation, so it compares equal
    /// to the same scenario built with [`FaultScenario::timed`].
    ///
    /// A processor may appear several times (multiple epochs); epochs of
    /// one processor must not overlap.
    ///
    /// # Panics
    /// Panics on negative or non-finite crash times, non-positive or NaN
    /// repairs, overlapping epochs of one processor (an epoch may only
    /// start at or after the previous reboot), or an epoch following a
    /// permanent one.
    pub fn transient(crashes: &[(ProcId, f64, f64)]) -> Self {
        for &(p, t, r) in crashes {
            assert!(t.is_finite() && t >= 0.0, "bad crash time {t} for {p}");
            assert!(r > 0.0 && !r.is_nan(), "bad repair time {r} for {p}");
        }
        let mut sorted = crashes.to_vec();
        sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut dead = Vec::new();
        let mut times = Vec::new();
        let mut repairs = Vec::new();
        let mut relapses = Vec::new();
        for &(p, t, r) in &sorted {
            if dead.last() == Some(&p) {
                let prev_up =
                    if let Some(&(q, pt, pr)) = relapses.last().filter(|&&(q, _, _)| q == p) {
                        debug_assert_eq!(q, p);
                        pt + pr
                    } else {
                        *times.last().unwrap() + *repairs.last().unwrap()
                    };
                assert!(
                    t >= prev_up && prev_up.is_finite(),
                    "overlapping failure epochs for {p}: crash {t} before reboot {prev_up}"
                );
                relapses.push((p, t, r));
            } else {
                dead.push(p);
                times.push(t);
                repairs.push(r);
            }
        }
        if relapses.is_empty() && repairs.iter().all(|r| r.is_infinite()) {
            repairs.clear(); // normalize: all-permanent ≡ the historical form
        }
        FaultScenario {
            dead,
            times,
            repairs,
            relapses,
        }
    }

    /// `k` distinct processors chosen uniformly among `m` (the paper's §6
    /// crash drawing: "processors that fail … are chosen uniformly"),
    /// failing at time 0.
    pub fn random<R: Rng>(m: usize, k: usize, rng: &mut R) -> Self {
        Self::random_timed(m, k, |_| 0.0, rng)
    }

    /// `k` distinct uniformly-chosen processors, with the crash time of
    /// each drawn from `draw_time` (in choice order).
    pub fn random_timed<R: Rng>(
        m: usize,
        k: usize,
        mut draw_time: impl FnMut(&mut R) -> f64,
        rng: &mut R,
    ) -> Self {
        assert!(k <= m, "cannot fail {k} of {m} processors");
        let crashes: Vec<(ProcId, f64)> = sample(rng, m, k)
            .into_iter()
            .map(|i| (ProcId::from_index(i), draw_time(rng)))
            .collect();
        Self::timed(&crashes)
    }

    /// True if `p` fails in this scenario (at any time, in any epoch) —
    /// the static adversarial view.
    #[inline]
    pub fn is_dead(&self, p: ProcId) -> bool {
        self.dead.binary_search(&p).is_ok()
    }

    /// True if `p` is down at time `t` (timed view): inside some failure
    /// epoch's `(crash, crash + repair)` window. Crashes take effect
    /// strictly after their instant — work *finishing* at the crash time
    /// still completes — and reboots exactly at theirs, so `p` is up
    /// again at `crash + repair`.
    #[inline]
    pub fn is_dead_at(&self, p: ProcId, t: f64) -> bool {
        self.epochs_of(p).any(|(c, up)| c < t && t < up)
    }

    /// The **first** crash time of `p`, or `None` if it never fails.
    #[inline]
    pub fn crash_time(&self, p: ProcId) -> Option<f64> {
        self.dead.binary_search(&p).ok().map(|i| self.times[i])
    }

    /// Repair duration of the first failure epoch of `p`:
    /// `f64::INFINITY` for a permanent crash, `None` if `p` never fails.
    #[inline]
    pub fn repair_of(&self, p: ProcId) -> Option<f64> {
        self.dead
            .binary_search(&p)
            .ok()
            .map(|i| self.repairs.get(i).copied().unwrap_or(f64::INFINITY))
    }

    /// The first crash time of `p` as a deadline: `+∞` for processors
    /// that never fail. This is the deadline of work placed at time 0;
    /// for work placed later on a transient platform see
    /// [`deadline_after`](FaultScenario::deadline_after).
    #[inline]
    pub fn deadline(&self, p: ProcId) -> f64 {
        self.crash_time(p).unwrap_or(f64::INFINITY)
    }

    /// The crash deadline of work placed on `p` at time `t`: the crash
    /// instant of the first failure epoch not already over by `t`
    /// (`crash + repair > t`), or `+∞` when no such epoch exists. Work
    /// placed while `p` is *down* gets the current epoch's (past) crash
    /// instant and can never finish in time — the engine's knowledge
    /// honesty: work optimistically placed on a processor whose crash is
    /// still undetected simply fails. On a permanent-only scenario this
    /// is the first crash time for every `t`, which is how the
    /// availability model degenerates to the historical engine.
    #[inline]
    pub fn deadline_after(&self, p: ProcId, t: f64) -> f64 {
        self.epochs_of(p)
            .find(|&(_, up)| up > t)
            .map_or(f64::INFINITY, |(c, _)| c)
    }

    /// The failure epochs of `p` as `(crash, reboot)` instants in time
    /// order (`reboot = crash + repair`, `+∞` when permanent). Empty for
    /// a processor that never fails.
    pub fn epochs_of(&self, p: ProcId) -> impl Iterator<Item = (f64, f64)> + '_ {
        let first = self
            .dead
            .binary_search(&p)
            .ok()
            .map(|i| {
                let r = self.repairs.get(i).copied().unwrap_or(f64::INFINITY);
                (self.times[i], self.times[i] + r)
            })
            .into_iter();
        let later = self
            .relapses
            .iter()
            .filter(move |&&(q, _, _)| q == p)
            .map(|&(_, c, r)| (c, c + r));
        first.chain(later)
    }

    /// True if any failure epoch has a finite repair (some processor
    /// reboots). Permanent-only scenarios — including everything the
    /// pre-transient constructors build — return false.
    pub fn has_transients(&self) -> bool {
        !self.relapses.is_empty() || self.repairs.iter().any(|r| r.is_finite())
    }

    /// Number of failed processors (distinct, regardless of how many
    /// epochs each has; see
    /// [`num_crash_epochs`](FaultScenario::num_crash_epochs)).
    #[inline]
    pub fn num_failures(&self) -> usize {
        self.dead.len()
    }

    /// Total number of failure epochs across all processors (equals
    /// [`num_failures`](FaultScenario::num_failures) for permanent-only
    /// scenarios).
    #[inline]
    pub fn num_crash_epochs(&self) -> usize {
        self.dead.len() + self.relapses.len()
    }

    /// The failed processors, sorted.
    pub fn dead(&self) -> &[ProcId] {
        &self.dead
    }

    /// `(processor, first crash time)` pairs, sorted by processor.
    pub fn crashes(&self) -> impl Iterator<Item = (ProcId, f64)> + '_ {
        self.dead.iter().copied().zip(self.times.iter().copied())
    }

    /// The earliest crash time, or `None` for a failure-free scenario.
    pub fn earliest_crash(&self) -> Option<f64> {
        self.times.iter().copied().reduce(f64::min)
    }

    /// True if every crash happens at time 0 and is permanent (the
    /// historical adversarial special case; such scenarios behave
    /// identically under static replay and the online engine's `Absorb`
    /// policy).
    pub fn is_static(&self) -> bool {
        self.times.iter().all(|&t| t == 0.0) && !self.has_transients()
    }
}

impl Serialize for FaultScenario {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("dead".to_string(), self.dead.to_value()),
            ("times".to_string(), self.times.to_value()),
        ];
        // Transient fields only when present: permanent-only scenarios
        // keep the pre-transient JSON shape byte-for-byte.
        if !self.repairs.is_empty() {
            pairs.push(("repairs".to_string(), self.repairs.to_value()));
        }
        if !self.relapses.is_empty() {
            pairs.push(("relapses".to_string(), self.relapses.to_value()));
        }
        serde::Value::Map(pairs)
    }
}

impl Deserialize for FaultScenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn optional<T: Deserialize>(v: &serde::Value, name: &str) -> Result<Vec<T>, serde::Error> {
            match serde::field(v, name) {
                // Absent (or null) = a pre-transient, permanent-only
                // document.
                Ok(serde::Value::Null) | Err(_) => Ok(Vec::new()),
                Ok(inner) => Deserialize::from_value(inner),
            }
        }
        Ok(FaultScenario {
            dead: Deserialize::from_value(serde::field(v, "dead")?)?,
            times: Deserialize::from_value(serde::field(v, "times")?)?,
            repairs: optional(v, "repairs")?,
            relapses: optional(v, "relapses")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_kills_nobody() {
        let s = FaultScenario::none();
        assert_eq!(s.num_failures(), 0);
        assert!(!s.is_dead(ProcId(0)));
        assert_eq!(s.earliest_crash(), None);
        assert!(s.is_static());
        assert!(!s.has_transients());
    }

    #[test]
    fn procs_dedup_and_sort() {
        let s = FaultScenario::procs(&[ProcId(3), ProcId(1), ProcId(3)]);
        assert_eq!(s.dead(), &[ProcId(1), ProcId(3)]);
        assert!(s.is_dead(ProcId(3)));
        assert!(!s.is_dead(ProcId(2)));
        assert_eq!(s.crash_time(ProcId(3)), Some(0.0));
        assert!(s.is_static());
    }

    #[test]
    fn timed_keeps_earliest_per_proc() {
        let s = FaultScenario::timed(&[(ProcId(2), 7.5), (ProcId(0), 3.0), (ProcId(2), 4.0)]);
        assert_eq!(s.dead(), &[ProcId(0), ProcId(2)]);
        assert_eq!(s.crash_time(ProcId(2)), Some(4.0));
        assert_eq!(s.crash_time(ProcId(1)), None);
        assert_eq!(s.deadline(ProcId(1)), f64::INFINITY);
        assert_eq!(s.earliest_crash(), Some(3.0));
        assert!(!s.is_static());
    }

    #[test]
    fn timed_liveness_is_strict_after_the_crash() {
        let s = FaultScenario::timed(&[(ProcId(1), 5.0)]);
        assert!(
            !s.is_dead_at(ProcId(1), 5.0),
            "work finishing at τ completes"
        );
        assert!(s.is_dead_at(ProcId(1), 5.0 + 1e-9));
        assert!(!s.is_dead_at(ProcId(0), 1e12));
        // The static view still reports the processor as failed.
        assert!(s.is_dead(ProcId(1)));
    }

    #[test]
    fn random_draws_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = FaultScenario::random(10, 3, &mut rng);
            assert_eq!(s.num_failures(), 3);
            assert!(s.dead().windows(2).all(|w| w[0] < w[1]));
            assert!(s.dead().iter().all(|p| p.index() < 10));
            assert!(s.is_static());
        }
    }

    #[test]
    fn random_timed_draws_times() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = FaultScenario::random_timed(8, 4, |r| r.gen_range(1.0..=9.0), &mut rng);
        assert_eq!(s.num_failures(), 4);
        assert!(s.crashes().all(|(_, t)| (1.0..=9.0).contains(&t)));
        assert!(!s.is_static());
    }

    #[test]
    #[should_panic]
    fn cannot_kill_more_than_platform() {
        let mut rng = StdRng::seed_from_u64(1);
        FaultScenario::random(3, 4, &mut rng);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_crash_times() {
        FaultScenario::timed(&[(ProcId(0), -1.0)]);
    }

    #[test]
    fn transient_windows_and_reboot_boundaries() {
        // One processor with two epochs, one permanently dead.
        let s = FaultScenario::transient(&[
            (ProcId(1), 2.0, 3.0),
            (ProcId(1), 10.0, 1.0),
            (ProcId(4), 6.0, f64::INFINITY),
        ]);
        assert!(s.has_transients());
        assert!(!s.is_static());
        assert_eq!(s.num_failures(), 2);
        assert_eq!(s.num_crash_epochs(), 3);
        assert_eq!(s.crash_time(ProcId(1)), Some(2.0));
        assert_eq!(s.repair_of(ProcId(1)), Some(3.0));
        assert_eq!(s.repair_of(ProcId(4)), Some(f64::INFINITY));
        assert_eq!(s.repair_of(ProcId(0)), None);
        assert_eq!(
            s.epochs_of(ProcId(1)).collect::<Vec<_>>(),
            vec![(2.0, 5.0), (10.0, 11.0)]
        );
        // Down strictly inside the window, up at both boundaries.
        assert!(!s.is_dead_at(ProcId(1), 2.0));
        assert!(s.is_dead_at(ProcId(1), 3.5));
        assert!(!s.is_dead_at(ProcId(1), 5.0), "up again at the reboot");
        assert!(s.is_dead_at(ProcId(1), 10.5));
        assert!(!s.is_dead_at(ProcId(1), 20.0));
        assert!(s.is_dead_at(ProcId(4), 100.0), "permanent stays down");
    }

    #[test]
    fn deadline_after_tracks_epochs() {
        let s = FaultScenario::transient(&[
            (ProcId(1), 2.0, 3.0),
            (ProcId(1), 10.0, 1.0),
            (ProcId(4), 6.0, f64::INFINITY),
        ]);
        // Work placed before the first crash dies at it…
        assert_eq!(s.deadline_after(ProcId(1), 0.0), 2.0);
        // …placed during the down window gets the (past) crash instant…
        assert_eq!(s.deadline_after(ProcId(1), 3.0), 2.0);
        // …placed at or after the reboot gets the next crash…
        assert_eq!(s.deadline_after(ProcId(1), 5.0), 10.0);
        assert_eq!(s.deadline_after(ProcId(1), 10.0), 10.0);
        // …and after the last epoch, never dies again.
        assert_eq!(s.deadline_after(ProcId(1), 11.0), f64::INFINITY);
        // Permanent crashes keep their deadline forever.
        assert_eq!(s.deadline_after(ProcId(4), 0.0), 6.0);
        assert_eq!(s.deadline_after(ProcId(4), 1e9), 6.0);
        // Never-failing processors have none.
        assert_eq!(s.deadline_after(ProcId(0), 0.0), f64::INFINITY);
        // On permanent-only scenarios deadline_after == deadline at any t.
        let perm = FaultScenario::timed(&[(ProcId(2), 4.0)]);
        for t in [0.0, 3.9, 4.0, 100.0] {
            assert_eq!(perm.deadline_after(ProcId(2), t), 4.0);
        }
    }

    #[test]
    fn all_infinite_repairs_normalize_to_permanent() {
        let t = FaultScenario::transient(&[
            (ProcId(0), 1.0, f64::INFINITY),
            (ProcId(3), 2.5, f64::INFINITY),
        ]);
        let p = FaultScenario::timed(&[(ProcId(0), 1.0), (ProcId(3), 2.5)]);
        assert_eq!(t, p, "repair = ∞ is the permanent representation");
        assert!(!t.has_transients());
        // A mixed scenario is not normalized (and not equal).
        let mixed =
            FaultScenario::transient(&[(ProcId(0), 1.0, 2.0), (ProcId(3), 2.5, f64::INFINITY)]);
        assert!(mixed.has_transients());
        assert_eq!(mixed.repair_of(ProcId(0)), Some(2.0));
    }

    #[test]
    fn permanent_serde_shape_is_unchanged_and_back_compatible() {
        // Permanent-only scenarios serialize exactly as before the
        // transient fields existed…
        let s = FaultScenario::timed(&[(ProcId(0), 1.5), (ProcId(2), 0.0)]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, r#"{"dead":[0,2],"times":[1.5,0]}"#);
        // …and documents written by the pre-transient code (no repairs /
        // relapses keys) still deserialize.
        let back: FaultScenario = serde_json::from_str(r#"{"dead":[1],"times":[2.5]}"#).unwrap();
        assert_eq!(back, FaultScenario::timed(&[(ProcId(1), 2.5)]));
        assert!(!back.has_transients());
    }

    #[test]
    fn transient_serde_round_trips() {
        let s = FaultScenario::transient(&[
            (ProcId(1), 2.0, 3.0),
            (ProcId(1), 10.0, 1.0),
            (ProcId(4), 6.0, f64::INFINITY),
        ]);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic]
    fn rejects_overlapping_epochs() {
        FaultScenario::transient(&[(ProcId(0), 1.0, 5.0), (ProcId(0), 3.0, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn rejects_epochs_after_a_permanent_crash() {
        FaultScenario::transient(&[(ProcId(0), 1.0, f64::INFINITY), (ProcId(0), 9.0, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_repairs() {
        FaultScenario::transient(&[(ProcId(0), 1.0, 0.0)]);
    }
}
