//! Event-driven re-execution of a static schedule under failures.
//!
//! The static schedule fixes *orders*: the task sequence of every
//! processor, and the message sequences of every send port, receive port
//! and directed link. The replay engine keeps those orders, removes the
//! work of dead processors, and recomputes actual times:
//!
//! * a replica starts when its processor finished the previous task and,
//!   for each predecessor edge, its data has arrived — from the earliest
//!   surviving copy under [`ReplayPolicy::FirstCopy`] ("as soon as it
//!   receives its input data … the task is executed and ignores the later
//!   incoming data", §6), or from *every* surviving copy under
//!   [`ReplayPolicy::AllCopies`] (the paper's latency upper bound);
//! * a message departs when its source replica has finished and the send
//!   port, the link and (if the receiver lives) the receive port are free
//!   per the inherited orders; it still takes `V · d`.
//!
//! A replica is *starved* when, for some predecessor edge, no surviving
//! copy of the data exists (all senders dead or themselves starved).
//! Starved replicas are pruned before the event simulation — a starved
//! replica computes nothing, sends nothing, and does not block its
//! processor (see DESIGN.md §2 on this fail-silent idealization).
//!
//! With no failures, `FirstCopy` replay reproduces the static schedule's
//! times exactly; tests enforce this invariant for every algorithm.

use crate::scenario::FaultScenario;
use ft_model::{FtSchedule, ReplicaRef};
use ft_platform::Instance;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a replica waits for replicated inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayPolicy {
    /// Start on the earliest surviving copy of each input (§6 semantics;
    /// yields the latency "with crash", and with no crash the nominal
    /// latency).
    FirstCopy,
    /// Wait for every surviving copy of each input (the pessimistic
    /// propagation behind the paper's upper bound).
    AllCopies,
}

/// The result of a replay.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Actual finish time of each replica (`None`: dead processor or
    /// starved), indexed `[task][copy]`.
    pub replica_finish: Vec<Vec<Option<f64>>>,
    /// Number of failures injected.
    pub num_failures: usize,
}

impl ReplayOutcome {
    /// True if every task completed at least one replica.
    pub fn completed(&self) -> bool {
        self.replica_finish
            .iter()
            .all(|rs| rs.iter().any(|f| f.is_some()))
    }

    /// Achieved latency: `max over tasks of (earliest completed replica)`.
    /// `None` if some task never completes.
    pub fn latency(&self) -> Option<f64> {
        let mut latency = 0.0f64;
        for rs in &self.replica_finish {
            let first = rs.iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
            if !first.is_finite() {
                return None;
            }
            latency = latency.max(first);
        }
        Some(latency)
    }

    /// Pessimistic latency: `max over tasks of (latest completed replica)`.
    /// `None` if some task never completes.
    pub fn last_copy_latency(&self) -> Option<f64> {
        let mut latency = 0.0f64;
        for rs in &self.replica_finish {
            let mut any = false;
            for f in rs.iter().flatten() {
                latency = latency.max(*f);
                any = true;
            }
            if !any {
                return None;
            }
        }
        Some(latency)
    }
}

/// Full replay configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Input waiting policy.
    pub policy: ReplayPolicy,
    /// Runtime fail-over: when every scheduled copy of some input of a
    /// replica is lost, synthesize a transfer from a surviving replica of
    /// the predecessor instead of starving. This matches the paper's §6
    /// crash experiments (CAFT crash latencies exist for every pattern);
    /// strict mode (`false`) exposes the Proposition 5.2 gap measured in
    /// EXPERIMENTS.md.
    pub reroute: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            policy: ReplayPolicy::FirstCopy,
            reroute: false,
        }
    }
}

/// Replays with [`ReplayPolicy::FirstCopy`], strict (no fail-over) — the
/// §6 semantics plus fail-silent starvation.
pub fn replay(inst: &Instance, sched: &FtSchedule, scenario: &FaultScenario) -> ReplayOutcome {
    replay_with_policy(inst, sched, scenario, ReplayPolicy::FirstCopy)
}

/// Dependency edge classification in the operation graph.
#[derive(Clone, Copy, Debug)]
enum Dep {
    /// Ordinary dependency: dependent waits for this op.
    Hard(u32),
    /// Group dependency: dependent waits for the *first* completion within
    /// the group `(op, group)`.
    Group(u32, u32),
}

#[derive(Clone, Debug)]
struct Op {
    duration: f64,
    hard_remaining: u32,
    groups_remaining: u32,
    /// Running max of satisfied dependency times.
    ready: f64,
    dependents: Vec<Dep>,
    scheduled: bool,
    finish: Option<f64>,
    /// For exec ops: which replica; for msg ops: u32::MAX.
    replica: Option<ReplicaRef>,
}

/// Replays the schedule under a failure scenario and waiting policy
/// (strict: no runtime fail-over).
pub fn replay_with_policy(
    inst: &Instance,
    sched: &FtSchedule,
    scenario: &FaultScenario,
    policy: ReplayPolicy,
) -> ReplayOutcome {
    replay_with(
        inst,
        sched,
        scenario,
        ReplayConfig {
            policy,
            reroute: false,
        },
    )
}

/// Replays the schedule under a full [`ReplayConfig`].
pub fn replay_with(
    inst: &Instance,
    sched: &FtSchedule,
    scenario: &FaultScenario,
    config: ReplayConfig,
) -> ReplayOutcome {
    let policy = config.policy;
    let g = &inst.graph;
    let v = g.num_tasks();
    let m = inst.num_procs();

    // Local message table: static records plus (under `reroute`) synthetic
    // fail-over transfers.
    let mut messages: Vec<ft_model::MessageRecord> = sched.messages.clone();

    // --- Pass 1: liveness of replicas, in topological task order. ---
    // alive[task][copy] — processor alive and, for each in-edge, at least
    // one recorded copy of the data from an alive source replica.
    let order = ft_graph::topological_order(g);
    // Synthetic fail-over transfers carry keys past every static time so
    // their records are recognizable and deterministic; they do not join
    // the port FIFOs (see pass 2) so the keys never order anything.
    let mut synth_key = sched.full_makespan() + 1.0;
    let mut alive: Vec<Vec<bool>> = sched
        .replicas
        .iter()
        .map(|rs| rs.iter().map(|r| !scenario.is_dead(r.proc)).collect())
        .collect();
    // Index incoming messages per replica once.
    let mut incoming: Vec<Vec<Vec<usize>>> = (0..v)
        .map(|t| vec![Vec::new(); sched.replicas[t].len()])
        .collect();
    for (mi, msg) in messages.iter().enumerate() {
        let t = msg.dst.task.index();
        let c = msg.dst.copy as usize;
        if c < incoming[t].len() {
            incoming[t][c].push(mi);
        }
    }
    for &t in &order {
        let ti = t.index();
        for c in 0..alive[ti].len() {
            if !alive[ti][c] {
                continue;
            }
            for &e in g.in_edges(t) {
                let has_live_copy = incoming[ti][c].iter().any(|&mi| {
                    let msg = &messages[mi];
                    msg.edge == e && alive[msg.src.task.index()][msg.src.copy as usize]
                });
                if has_live_copy {
                    continue;
                }
                if config.reroute {
                    // Fail-over: fetch the data from the earliest-finishing
                    // surviving replica of the predecessor, if any.
                    let pred = g.edge(e).src;
                    let source = sched
                        .replicas_of(pred)
                        .iter()
                        .filter(|r| alive[pred.index()][r.of.copy as usize])
                        .min_by(|a, b| a.finish.total_cmp(&b.finish).then_with(|| a.of.cmp(&b.of)))
                        .copied();
                    if let Some(src) = source {
                        let dst = &sched.replicas[ti][c];
                        let w = inst.comm_time(e, src.proc, dst.proc);
                        let mi = messages.len();
                        messages.push(ft_model::MessageRecord {
                            edge: e,
                            src: src.of,
                            dst: dst.of,
                            from: src.proc,
                            to: dst.proc,
                            // Deterministic marker key (not a FIFO position).
                            start: synth_key,
                            finish: synth_key + w,
                        });
                        synth_key += 1.0;
                        incoming[ti][c].push(mi);
                        continue;
                    }
                }
                alive[ti][c] = false; // starved
                break;
            }
        }
    }

    // --- Pass 2: build the operation graph. ---
    // Exec op ids: one per alive replica; msg op ids: one per message whose
    // source replica is alive.
    let mut ops: Vec<Op> = Vec::new();
    let mut exec_op: Vec<Vec<Option<u32>>> = (0..v)
        .map(|t| vec![None; sched.replicas[t].len()])
        .collect();
    for t in 0..v {
        for (c, r) in sched.replicas[t].iter().enumerate() {
            if alive[t][c] {
                exec_op[t][c] = Some(ops.len() as u32);
                ops.push(Op {
                    duration: inst.exec_time(r.of.task, r.proc),
                    hard_remaining: 0,
                    groups_remaining: 0,
                    ready: 0.0,
                    dependents: Vec::new(),
                    scheduled: false,
                    finish: None,
                    replica: Some(r.of),
                });
            }
        }
    }
    let mut msg_op: Vec<Option<u32>> = vec![None; messages.len()];
    for (mi, msg) in messages.iter().enumerate() {
        let src_alive = alive[msg.src.task.index()][msg.src.copy as usize];
        if !src_alive {
            continue;
        }
        let id = ops.len() as u32;
        msg_op[mi] = Some(id);
        ops.push(Op {
            duration: msg.finish - msg.start,
            hard_remaining: 0,
            groups_remaining: 0,
            ready: 0.0,
            dependents: Vec::new(),
            scheduled: false,
            finish: None,
            replica: None,
        });
        // Data availability: the message departs after its source replica.
        let src = exec_op[msg.src.task.index()][msg.src.copy as usize]
            .expect("alive source replica has an exec op");
        ops[src as usize].dependents.push(Dep::Hard(id));
        ops[id as usize].hard_remaining += 1;
    }

    // Resource FIFO chains, inherited from static start times.
    // Processor task chains.
    let mut per_proc: Vec<Vec<(f64, u32)>> = vec![Vec::new(); m];
    for (t, rs) in sched.replicas.iter().enumerate() {
        for (c, r) in rs.iter().enumerate() {
            if let Some(op) = exec_op[t][c] {
                per_proc[r.proc.index()].push((r.start, op));
            }
        }
    }
    chain_fifo(&mut ops, &mut per_proc);

    // Send port / link / receive port chains — *static* remote messages
    // only. Synthetic fail-over transfers (indices ≥ `static_count`) are
    // modeled contention-free: any fixed FIFO position derived from static
    // times can invert against the recomputed times and deadlock the
    // operation graph, and fail-over traffic is rare emergency traffic
    // whose contention is second-order (see DESIGN.md §2).
    let static_count = sched.messages.len();
    let mut send_q: Vec<Vec<(f64, u32)>> = vec![Vec::new(); m];
    let mut recv_q: Vec<Vec<(f64, u32)>> = vec![Vec::new(); m];
    let mut link_q: Vec<Vec<(f64, u32)>> = vec![Vec::new(); m * m];
    for (mi, msg) in messages.iter().enumerate().take(static_count) {
        let Some(op) = msg_op[mi] else { continue };
        if msg.is_local() {
            continue;
        }
        send_q[msg.from.index()].push((msg.start, op));
        link_q[msg.from.index() * m + msg.to.index()].push((msg.start, op));
        if !scenario.is_dead(msg.to) {
            recv_q[msg.to.index()].push((msg.start, op));
        }
    }
    chain_fifo(&mut ops, &mut send_q);
    chain_fifo(&mut ops, &mut recv_q);
    chain_fifo(&mut ops, &mut link_q);

    // Data groups: replica (t, c) waits per in-edge on its surviving
    // copies (Group deps under FirstCopy; Hard deps under AllCopies).
    for t in 0..v {
        for c in 0..sched.replicas[t].len() {
            let Some(ex) = exec_op[t][c] else { continue };
            for (gi, &e) in g
                .in_edges(ft_graph::TaskId::from_index(t))
                .iter()
                .enumerate()
            {
                let members: Vec<u32> = incoming[t][c]
                    .iter()
                    .filter(|&&mi| messages[mi].edge == e)
                    .filter_map(|&mi| msg_op[mi])
                    .collect();
                debug_assert!(!members.is_empty(), "alive replica with starved edge");
                match policy {
                    ReplayPolicy::FirstCopy => {
                        ops[ex as usize].groups_remaining += 1;
                        for mo in members {
                            ops[mo as usize].dependents.push(Dep::Group(ex, gi as u32));
                        }
                    }
                    ReplayPolicy::AllCopies => {
                        for mo in members {
                            ops[mo as usize].dependents.push(Dep::Hard(ex));
                            ops[ex as usize].hard_remaining += 1;
                        }
                    }
                }
            }
        }
    }

    // --- Pass 3: discrete-event simulation. ---
    // Heap of (finish, op) processed in time order, so the first completed
    // member of a group is also the minimum-valued one.
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    let mut group_done: Vec<Vec<bool>> = ops
        .iter()
        .map(|o| vec![false; o.groups_remaining as usize])
        .collect();
    for (i, op) in ops.iter_mut().enumerate() {
        if op.hard_remaining == 0 && op.groups_remaining == 0 {
            op.scheduled = true;
            heap.push(Reverse((OrdF64(op.duration), i as u32)));
        }
    }
    while let Some(Reverse((OrdF64(finish), i))) = heap.pop() {
        let dependents = std::mem::take(&mut ops[i as usize].dependents);
        ops[i as usize].finish = Some(finish);
        for dep in &dependents {
            let (target, is_group) = match *dep {
                Dep::Hard(t) => (t, None),
                Dep::Group(t, g) => (t, Some(g)),
            };
            let t = target as usize;
            match is_group {
                None => {
                    ops[t].hard_remaining -= 1;
                    ops[t].ready = ops[t].ready.max(finish);
                }
                Some(gi) => {
                    // Only the first arrival in the group counts.
                    if !group_done[t][gi as usize] {
                        group_done[t][gi as usize] = true;
                        ops[t].groups_remaining -= 1;
                        ops[t].ready = ops[t].ready.max(finish);
                    }
                }
            }
            if !ops[t].scheduled && ops[t].hard_remaining == 0 && ops[t].groups_remaining == 0 {
                ops[t].scheduled = true;
                let f = ops[t].ready + ops[t].duration;
                heap.push(Reverse((OrdF64(f), target)));
            }
        }
        ops[i as usize].dependents = dependents;
    }

    if std::env::var_os("FTSIM_DEBUG").is_some() {
        let describe = |i: usize| -> String {
            match ops[i].replica {
                Some(r) => format!("exec {r:?}"),
                None => {
                    let mi = msg_op.iter().position(|&o| o == Some(i as u32)).unwrap();
                    let m = &messages[mi];
                    format!(
                        "msg e{} {:?}@{}->{:?}@{} key {:.1}",
                        m.edge.index(),
                        m.src,
                        m.from,
                        m.dst,
                        m.to,
                        m.start
                    )
                }
            }
        };
        let mut shown = 0;
        for (i, op) in ops.iter().enumerate() {
            if op.finish.is_none() && shown < 12 {
                shown += 1;
                eprintln!(
                    "stuck op {i} [{}]: hard {} groups {}",
                    describe(i),
                    op.hard_remaining,
                    op.groups_remaining
                );
                // What does it wait on?
                for (j, other) in ops.iter().enumerate() {
                    if other.finish.is_some() {
                        continue;
                    }
                    for d in &other.dependents {
                        let tgt = match *d {
                            Dep::Hard(t) | Dep::Group(t, _) => t as usize,
                        };
                        if tgt == i {
                            eprintln!("    waits on stuck {j} [{}]", describe(j));
                        }
                    }
                }
            }
        }
    }

    // --- Collect per-replica finishes. ---
    let mut replica_finish: Vec<Vec<Option<f64>>> = (0..v)
        .map(|t| vec![None; sched.replicas[t].len()])
        .collect();
    for op in &ops {
        if let (Some(rr), Some(f)) = (op.replica, op.finish) {
            replica_finish[rr.task.index()][rr.copy as usize] = Some(f);
        }
    }
    ReplayOutcome {
        replica_finish,
        num_failures: scenario.num_failures(),
    }
}

/// Adds Hard deps chaining each queue in static start order.
fn chain_fifo(ops: &mut [Op], queues: &mut [Vec<(f64, u32)>]) {
    for q in queues {
        q.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for w in q.windows(2) {
            let (prev, next) = (w[0].1, w[1].1);
            ops[prev as usize].dependents.push(Dep::Hard(next));
            ops[next as usize].hard_remaining += 1;
        }
    }
}

/// Total-order wrapper for f64 heap keys.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_algos::{caft, ftsa, CommModel};
    use ft_graph::gen::{random_layered, RandomDagParams};
    use ft_platform::{random_instance, PlatformParams, ProcId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_setup(seed: u64, gran: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_layered(&RandomDagParams::default().with_tasks(30), &mut rng);
        random_instance(g, &PlatformParams::default(), gran, &mut rng)
    }

    #[test]
    fn no_crash_first_copy_reproduces_static_latency() {
        for seed in 0..3u64 {
            let inst = random_setup(seed, 1.0);
            for eps in [0usize, 1, 2] {
                let s = caft(&inst, eps, CommModel::OnePort, seed);
                let out = replay(&inst, &s, &FaultScenario::none());
                assert!(out.completed());
                let lat = out.latency().unwrap();
                assert!(
                    (lat - s.latency()).abs() < 1e-6,
                    "seed {seed} eps {eps}: replay {lat} vs static {}",
                    s.latency()
                );
            }
        }
    }

    #[test]
    fn no_crash_ftsa_also_reproduces_static_latency() {
        let inst = random_setup(7, 0.5);
        let s = ftsa(&inst, 2, CommModel::OnePort, 7);
        let out = replay(&inst, &s, &FaultScenario::none());
        assert!((out.latency().unwrap() - s.latency()).abs() < 1e-6);
    }

    #[test]
    fn all_copies_is_an_upper_bound() {
        let inst = random_setup(11, 1.0);
        let s = caft(&inst, 2, CommModel::OnePort, 0);
        let first = replay_with_policy(&inst, &s, &FaultScenario::none(), ReplayPolicy::FirstCopy);
        let all = replay_with_policy(&inst, &s, &FaultScenario::none(), ReplayPolicy::AllCopies);
        let lf = first.latency().unwrap();
        let la = all.last_copy_latency().unwrap();
        assert!(la >= lf - 1e-9, "upper bound {la} < nominal {lf}");
    }

    #[test]
    fn crash_of_unused_processor_changes_nothing() {
        let inst = random_setup(13, 2.0);
        let s = caft(&inst, 1, CommModel::OnePort, 0);
        // Find a processor hosting nothing, if any.
        let used: std::collections::HashSet<_> =
            s.replicas.iter().flatten().map(|r| r.proc).collect();
        let idle = inst.platform.procs().find(|p| !used.contains(p));
        if let Some(idle) = idle {
            let out = replay(&inst, &s, &FaultScenario::procs(&[idle]));
            assert!((out.latency().unwrap() - s.latency()).abs() < 1e-6);
        }
    }

    #[test]
    fn ftsa_single_crash_always_completes_with_eps1() {
        // FTSA's full fan-in makes ε-resilience unconditional: every alive
        // replica receives from every copy of each input.
        let inst = random_setup(17, 1.0);
        let s = ftsa(&inst, 1, CommModel::OnePort, 0);
        for p in inst.platform.procs() {
            let out = replay(&inst, &s, &FaultScenario::procs(&[p]));
            assert!(out.completed(), "crash of {p} kills the schedule");
            assert!(out.latency().is_some());
        }
    }

    #[test]
    fn caft_one_to_one_chains_can_break_transitively() {
        // Reproduction finding (EXPERIMENTS.md): CAFT as specified in the
        // paper locks processors per *step* (eq. (7)) but one-to-one supply
        // chains of different replicas can still share a processor deeper
        // in their lineage, so a single crash may starve every replica of
        // some task. This test pins the known counterexample so the
        // behaviour is tracked; most single crashes do complete.
        let inst = random_setup(17, 1.0);
        let s = caft(&inst, 1, CommModel::OnePort, 0);
        let outcomes: Vec<bool> = inst
            .platform
            .procs()
            .map(|p| replay(&inst, &s, &FaultScenario::procs(&[p])).completed())
            .collect();
        assert!(
            outcomes.iter().any(|&c| !c),
            "expected at least one starving pattern on this deep graph"
        );
        assert!(outcomes.iter().any(|&c| c), "some crashes must be harmless");
        // With runtime fail-over (the §6 crash-experiment semantics) every
        // single-crash pattern completes: a surviving replica of each
        // predecessor always exists (space exclusion), so rerouting
        // restores progress.
        for p in inst.platform.procs() {
            let out = crate::replay::replay_with(
                &inst,
                &s,
                &FaultScenario::procs(&[p]),
                ReplayConfig {
                    policy: ReplayPolicy::FirstCopy,
                    reroute: true,
                },
            );
            assert!(
                out.completed(),
                "fail-over replay must complete (crash {p})"
            );
        }
    }

    #[test]
    fn killing_everything_fails() {
        let inst = random_setup(19, 1.0);
        let s = caft(&inst, 1, CommModel::OnePort, 0);
        let all: Vec<ProcId> = inst.platform.procs().collect();
        let out = replay(&inst, &s, &FaultScenario::procs(&all));
        assert!(!out.completed());
        assert_eq!(out.latency(), None);
    }

    #[test]
    fn crash_latency_can_differ_from_nominal() {
        // With a crash, the achieved latency may be larger or occasionally
        // smaller than nominal (§6 discusses both); it must stay positive
        // and finite when the schedule completes.
        let inst = random_setup(23, 0.4);
        let s = ftsa(&inst, 2, CommModel::OnePort, 0);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let sc = FaultScenario::random(inst.num_procs(), 2, &mut rng);
            let out = replay(&inst, &s, &sc);
            assert!(out.completed(), "FTSA ε = 2 must survive 2 crashes: {sc:?}");
            let lat = out.latency().unwrap();
            assert!(lat.is_finite() && lat > 0.0);
        }
    }
}
