//! # ft-sim — executing schedules under failures
//!
//! The paper evaluates schedules three ways (§4.2, §6):
//!
//! * the **latency with 0 crash** — the static schedule's nominal latency
//!   (each task effective as soon as its *first* replica finishes);
//! * the **upper bound** — the latency if every task had to wait for the
//!   *last* copy of each input ("always achieved even with ε failures");
//! * the **real execution time when processors crash** — replaying the
//!   static schedule with some processors dead, where a replica starts as
//!   soon as the earliest *surviving* copy of each input arrives and
//!   "ignores the later incoming data".
//!
//! All three come out of one event-driven [`replay()`] engine: the static
//! schedule fixes the per-processor task order and the per-port / per-link
//! message orders; the engine recomputes actual times under those orders
//! with the dead processors' work removed. With no failures and the
//! first-copy policy the replay reproduces the static times exactly (a
//! strong internal consistency check, enforced by tests).
//!
//! On top of the engine:
//! * [`bounds`] packages the three §6 metrics per schedule;
//! * [`resilience`] checks Proposition 5.2 — the schedule completes under
//!   *every* failure pattern of size ≤ ε (exhaustively for small
//!   platforms, sampled otherwise);
//! * [`messages`] tallies the communication counts behind Proposition 5.1
//!   (`e`, `e(ε+1)`, `e(ε+1)²`).

#![warn(missing_docs)]

pub mod bounds;
pub mod messages;
pub mod replay;
pub mod resilience;
pub mod scenario;

pub use bounds::{latency_bounds, LatencyBounds};
pub use messages::{message_stats, MessageStats};
pub use replay::{
    replay, replay_with, replay_with_policy, ReplayConfig, ReplayOutcome, ReplayPolicy,
};
pub use resilience::{check_resilience, ResilienceReport};
pub use scenario::FaultScenario;
