//! Property tests for the routing substrate: `shortest_routes` tables and
//! `Topology::is_connected`, across every topology variant. The routing
//! layer is load-bearing for the contention model (ft-net charges transfers
//! link-by-link along these routes), so the invariants are pinned here:
//!
//! * routes start and end at their endpoints and only cross physical links;
//! * the `delay` table is consistent with the route (hop delays sum to it)
//!   and symmetric for symmetric link delays;
//! * end-to-end delays satisfy the triangle inequality;
//! * tie-breaks are deterministic (identical rebuilds, smallest-index
//!   first hop among equal-delay routes);
//! * `is_connected` agrees with an independent reachability check.

use ft_platform::routing::{shortest_routes, Routes};
use ft_platform::Topology;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A topology drawn from `kind`: every variant, sized to `m` processors
/// (`Benes` rounds `m` down to a power of two). Returns the topology and
/// the processor count it is valid for.
fn make_topology(kind: usize, m: usize, rng: &mut StdRng) -> (Topology, usize) {
    match kind {
        0 => (Topology::Clique, m),
        1 => (Topology::Ring, m),
        2 => (Topology::Star, m),
        3 => {
            let log2_m = (usize::BITS - 1 - m.leading_zeros()).min(3);
            (Topology::Benes { log2_m }, 1usize << log2_m)
        }
        _ => {
            // Random connected graph: a random spanning tree plus a few
            // extra chords.
            let mut edges = Vec::new();
            for v in 1..m {
                let u = rng.gen_range(0..v);
                edges.push((u as u32, v as u32));
            }
            for _ in 0..m / 2 {
                let a = rng.gen_range(0..m);
                let b = rng.gen_range(0..m);
                if a != b {
                    edges.push((a as u32, b as u32));
                }
            }
            (Topology::Custom(edges), m)
        }
    }
}

/// Symmetric positive link delays drawn per unordered node pair.
fn draw_delays(n: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut table = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rng.gen_range(0.5..1.5);
            table[i * n + j] = d;
            table[j * n + i] = d;
        }
    }
    table
}

fn build(topology: &Topology, m: usize, table: &[f64]) -> Routes {
    let n = topology.num_nodes(m);
    let adj = topology.adjacency(m);
    shortest_routes(n, &adj, |a, b| table[a * n + b])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn routes_are_valid_and_consistent_with_delay(
        seed in any::<u64>(),
        m in 2usize..10,
        kind in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (topology, m) = make_topology(kind, m, &mut rng);
        let n = topology.num_nodes(m);
        let adj = topology.adjacency(m);
        let table = draw_delays(n, &mut rng);
        let connected = topology.is_connected(m);
        let routes = build(&topology, m, &table);
        for k in 0..n {
            for h in 0..n {
                if k == h {
                    prop_assert_eq!(routes.delay(k, h), 0.0);
                    continue;
                }
                if !connected && routes.delay(k, h).is_infinite() {
                    continue;
                }
                let path = routes.route(k, h);
                prop_assert_eq!(*path.first().unwrap(), k);
                prop_assert_eq!(*path.last().unwrap(), h);
                let mut sum = 0.0;
                for w in path.windows(2) {
                    prop_assert!(
                        adj[w[0]].contains(&w[1]),
                        "route hop {}→{} is not a physical link", w[0], w[1]
                    );
                    sum += table[w[0] * n + w[1]];
                }
                let d = routes.delay(k, h);
                prop_assert!(
                    (sum - d).abs() < 1e-9,
                    "hop delays sum to {sum}, table says {d}"
                );
                // Symmetric weights ⇒ symmetric end-to-end delays.
                prop_assert!((d - routes.delay(h, k)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delays_satisfy_triangle_inequality(
        seed in any::<u64>(),
        m in 2usize..8,
        kind in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (topology, m) = make_topology(kind, m, &mut rng);
        let n = topology.num_nodes(m);
        let table = draw_delays(n, &mut rng);
        let routes = build(&topology, m, &table);
        for k in 0..n {
            for h in 0..n {
                for j in 0..n {
                    let lhs = routes.delay(k, h);
                    let rhs = routes.delay(k, j) + routes.delay(j, h);
                    prop_assert!(
                        lhs <= rhs + 1e-9,
                        "d({k},{h}) = {lhs} > d({k},{j}) + d({j},{h}) = {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_are_deterministic(
        seed in any::<u64>(),
        m in 2usize..10,
        kind in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (topology, m) = make_topology(kind, m, &mut rng);
        let n = topology.num_nodes(m);
        let table = draw_delays(n, &mut rng);
        let a = build(&topology, m, &table);
        let b = build(&topology, m, &table);
        prop_assert_eq!(&a.next, &b.next);
        // Bitwise, not approximate: same inputs must give the same table.
        for (x, y) in a.delay.iter().zip(&b.delay) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn is_connected_matches_reference_reachability(
        seed in any::<u64>(),
        m in 1usize..10,
        kind in 0usize..5,
        drop in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (topology, m) = make_topology(kind, m, &mut rng);
        // Possibly break connectivity by dropping edges from a Custom copy.
        let topology = match (&topology, drop) {
            (Topology::Custom(edges), d) if d > 0 && !edges.is_empty() => {
                let keep = edges.len().saturating_sub(d);
                Topology::Custom(edges[..keep].to_vec())
            }
            _ => topology,
        };
        let adj = topology.adjacency(m);
        let n = adj.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        prop_assert_eq!(topology.is_connected(m), seen.iter().all(|&s| s));
    }
}

/// The documented tie-break: among equal-delay routes the smaller
/// first-hop index wins — pinned on a diamond and an even cycle where both
/// directions cost the same.
#[test]
fn ties_break_towards_smaller_first_hop() {
    // Diamond: 0–1–3 and 0–2–3 with identical unit delays.
    let diamond = Topology::Custom(vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    let adj = diamond.adjacency(4);
    let r = shortest_routes(4, &adj, |_, _| 1.0);
    assert_eq!(r.route(0, 3), vec![0, 1, 3]);
    assert_eq!(r.route(3, 0), vec![3, 1, 0]);

    // Even cycle: opposite node is equidistant both ways round.
    let adj = Topology::Ring.adjacency(6);
    let r = shortest_routes(6, &adj, |_, _| 1.0);
    assert_eq!(r.route(0, 3), vec![0, 1, 2, 3]);
}
