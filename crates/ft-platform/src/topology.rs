//! Interconnect topologies.
//!
//! The paper's experiments use a clique (§2: "the processors are fully
//! connected"); the conclusion proposes sparse interconnects with routing
//! tables as an extension. A [`Topology`] lists the physical bidirectional
//! links; [`crate::routing`] turns it into per-pair routes.

use serde::{Deserialize, Serialize};

/// Physical interconnect shape. Links are bidirectional; the one-port model
/// still distinguishes the two directions of a physical link (full-duplex
/// network interfaces, §2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of processors is directly connected (the paper's model).
    Clique,
    /// Processors arranged in a cycle: `i ↔ (i+1) mod m`.
    Ring,
    /// Processor 0 is the hub; every other processor connects only to it.
    Star,
    /// Explicit undirected edge list over processor indices.
    Custom(Vec<(u32, u32)>),
}

impl Topology {
    /// The undirected adjacency lists implied by the topology for a
    /// platform of `m` processors.
    pub fn adjacency(&self, m: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); m];
        match self {
            Topology::Clique => {
                for (i, neighbors) in adj.iter_mut().enumerate() {
                    for j in (0..m).filter(|&j| j != i) {
                        neighbors.push(j);
                    }
                }
            }
            Topology::Ring => {
                if m == 1 {
                    return adj;
                }
                for i in 0..m {
                    let next = (i + 1) % m;
                    if !adj[i].contains(&next) {
                        adj[i].push(next);
                        adj[next].push(i);
                    }
                }
            }
            Topology::Star => {
                for i in 1..m {
                    adj[0].push(i);
                    adj[i].push(0);
                }
            }
            Topology::Custom(edges) => {
                for &(a, b) in edges {
                    let (a, b) = (a as usize, b as usize);
                    assert!(a < m && b < m, "edge endpoint out of range");
                    assert_ne!(a, b, "self-link");
                    if !adj[a].contains(&b) {
                        adj[a].push(b);
                        adj[b].push(a);
                    }
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// True if every processor can reach every other.
    pub fn is_connected(&self, m: usize) -> bool {
        if m == 0 {
            return true;
        }
        let adj = self.adjacency(m);
        let mut seen = vec![false; m];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_adjacency() {
        let adj = Topology::Clique.adjacency(4);
        for (i, l) in adj.iter().enumerate() {
            assert_eq!(l.len(), 3);
            assert!(!l.contains(&i));
        }
        assert!(Topology::Clique.is_connected(4));
    }

    #[test]
    fn ring_adjacency() {
        let adj = Topology::Ring.adjacency(5);
        for l in &adj {
            assert_eq!(l.len(), 2);
        }
        assert!(Topology::Ring.is_connected(5));
    }

    #[test]
    fn two_node_ring_has_single_link() {
        let adj = Topology::Ring.adjacency(2);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
    }

    #[test]
    fn star_adjacency() {
        let adj = Topology::Star.adjacency(4);
        assert_eq!(adj[0], vec![1, 2, 3]);
        assert_eq!(adj[2], vec![0]);
        assert!(Topology::Star.is_connected(4));
    }

    #[test]
    fn custom_disconnected() {
        let t = Topology::Custom(vec![(0, 1), (2, 3)]);
        assert!(!t.is_connected(4));
        assert!(Topology::Custom(vec![(0, 1)]).is_connected(2));
    }

    #[test]
    #[should_panic]
    fn custom_rejects_out_of_range() {
        Topology::Custom(vec![(0, 9)]).adjacency(3);
    }
}
