//! Interconnect topologies.
//!
//! The paper's experiments use a clique (§2: "the processors are fully
//! connected"); the conclusion proposes sparse interconnects with routing
//! tables as an extension. A [`Topology`] lists the physical bidirectional
//! links; [`crate::routing`] turns it into per-pair routes.

use serde::{Deserialize, Serialize};

/// Physical interconnect shape. Links are bidirectional; the one-port model
/// still distinguishes the two directions of a physical link (full-duplex
/// network interfaces, §2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of processors is directly connected (the paper's model).
    Clique,
    /// Processors arranged in a cycle: `i ↔ (i+1) mod m`.
    Ring,
    /// Processor 0 is the hub; every other processor connects only to it.
    Star,
    /// Explicit undirected edge list over processor indices.
    Custom(Vec<(u32, u32)>),
    /// Beneš rearrangeable multistage network `B(r)` with `r = log2_m`
    /// (back-to-back butterflies, arXiv:2411.04135). The `m = 2^r`
    /// processors are the level-0 vertices; levels `1..=2r` are switch
    /// vertices (`2r + 1` levels of `2^r` vertices each, vertex `v` of
    /// level `l` is graph node `l * 2^r + v`). Level `i` connects to level
    /// `i + 1` by a straight edge and a butterfly cross edge flipping bit
    /// `r-1-i` (first half) or bit `i-r` (mirrored second half), giving
    /// `(2r+1)·2^r` vertices, `r·2^(r+2)` edges and processor-pair
    /// diameter `2r`.
    Benes {
        /// `log2` of the processor count (`m = 2^log2_m`).
        log2_m: u32,
    },
}

impl Topology {
    /// Total number of graph nodes for a platform of `m` processors:
    /// `m` for flat topologies, processors plus switch vertices for
    /// multistage ones.
    ///
    /// # Panics
    /// Panics for [`Topology::Benes`] when `m != 2^log2_m`.
    pub fn num_nodes(&self, m: usize) -> usize {
        match self {
            Topology::Benes { log2_m } => {
                let r = *log2_m as usize;
                assert_eq!(
                    m,
                    1usize << r,
                    "Benes {{ log2_m: {r} }} requires m == 2^{r} processors, got {m}"
                );
                (2 * r + 1) << r
            }
            _ => m,
        }
    }

    /// The undirected adjacency lists implied by the topology for a
    /// platform of `m` processors. For multistage topologies the lists
    /// cover every graph node ([`Topology::num_nodes`]); processors are
    /// always nodes `0..m`.
    pub fn adjacency(&self, m: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_nodes(m)];
        match self {
            Topology::Clique => {
                for (i, neighbors) in adj.iter_mut().enumerate() {
                    for j in (0..m).filter(|&j| j != i) {
                        neighbors.push(j);
                    }
                }
            }
            Topology::Ring => {
                if m == 1 {
                    return adj;
                }
                for i in 0..m {
                    let next = (i + 1) % m;
                    if !adj[i].contains(&next) {
                        adj[i].push(next);
                        adj[next].push(i);
                    }
                }
            }
            Topology::Star => {
                for i in 1..m {
                    adj[0].push(i);
                    adj[i].push(0);
                }
            }
            Topology::Custom(edges) => {
                for &(a, b) in edges {
                    let (a, b) = (a as usize, b as usize);
                    assert!(a < m && b < m, "edge endpoint out of range");
                    assert_ne!(a, b, "self-link");
                    if !adj[a].contains(&b) {
                        adj[a].push(b);
                        adj[b].push(a);
                    }
                }
            }
            Topology::Benes { log2_m } => {
                let r = *log2_m as usize;
                let width = 1usize << r;
                for level in 0..2 * r {
                    // Bit flipped by the cross edges of this gap: the first
                    // r gaps walk the bits MSB→LSB, the mirrored second
                    // half walks them back LSB→MSB.
                    let bit = if level < r { r - 1 - level } else { level - r };
                    for v in 0..width {
                        let a = level * width + v;
                        let straight = (level + 1) * width + v;
                        let cross = (level + 1) * width + (v ^ (1 << bit));
                        adj[a].push(straight);
                        adj[straight].push(a);
                        adj[a].push(cross);
                        adj[cross].push(a);
                    }
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// True if every node (processor or switch) can reach every other.
    pub fn is_connected(&self, m: usize) -> bool {
        if m == 0 {
            return true;
        }
        let adj = self.adjacency(m);
        let n = adj.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_adjacency() {
        let adj = Topology::Clique.adjacency(4);
        for (i, l) in adj.iter().enumerate() {
            assert_eq!(l.len(), 3);
            assert!(!l.contains(&i));
        }
        assert!(Topology::Clique.is_connected(4));
    }

    #[test]
    fn ring_adjacency() {
        let adj = Topology::Ring.adjacency(5);
        for l in &adj {
            assert_eq!(l.len(), 2);
        }
        assert!(Topology::Ring.is_connected(5));
    }

    #[test]
    fn two_node_ring_has_single_link() {
        let adj = Topology::Ring.adjacency(2);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
    }

    #[test]
    fn star_adjacency() {
        let adj = Topology::Star.adjacency(4);
        assert_eq!(adj[0], vec![1, 2, 3]);
        assert_eq!(adj[2], vec![0]);
        assert!(Topology::Star.is_connected(4));
    }

    #[test]
    fn custom_disconnected() {
        let t = Topology::Custom(vec![(0, 1), (2, 3)]);
        assert!(!t.is_connected(4));
        assert!(Topology::Custom(vec![(0, 1)]).is_connected(2));
    }

    #[test]
    #[should_panic]
    fn custom_rejects_out_of_range() {
        Topology::Custom(vec![(0, 9)]).adjacency(3);
    }

    /// Breadth-first hop distances from `src` over unit-weight edges.
    fn bfs(adj: &[Vec<usize>], src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; adj.len()];
        let mut queue = std::collections::VecDeque::from([src]);
        dist[src] = 0;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// `B(r)` metrics from the Beneš-variant paper (arXiv:2411.04135):
    /// `(2r+1)·2^r` vertices, `r·2^(r+2)` edges, connected, and hop
    /// diameter `2r` between processors (level-0 vertices).
    #[test]
    fn benes_matches_published_metrics() {
        for r in 1u32..=4 {
            let m = 1usize << r;
            let t = Topology::Benes { log2_m: r };
            let n = t.num_nodes(m);
            assert_eq!(n, (2 * r as usize + 1) << r, "|V| for B({r})");
            let adj = t.adjacency(m);
            assert_eq!(adj.len(), n);
            let edges: usize = adj.iter().map(Vec::len).sum::<usize>() / 2;
            assert_eq!(edges, (r as usize) << (r + 2), "|E| for B({r})");
            assert!(t.is_connected(m), "B({r}) must be connected");
            // No duplicate edges: adjacency lists are sorted and strict.
            for l in &adj {
                assert!(l.windows(2).all(|w| w[0] < w[1]));
            }
            let mut diameter = 0;
            for k in 0..m {
                let dist = bfs(&adj, k);
                for &d in dist.iter().take(m) {
                    assert_ne!(d, usize::MAX);
                    diameter = diameter.max(d);
                }
            }
            assert_eq!(diameter, 2 * r as usize, "proc-pair diameter of B({r})");
        }
    }

    #[test]
    fn benes_trivial_single_processor() {
        let t = Topology::Benes { log2_m: 0 };
        assert_eq!(t.num_nodes(1), 1);
        assert!(t.adjacency(1)[0].is_empty());
        assert!(t.is_connected(1));
    }

    #[test]
    #[should_panic]
    fn benes_rejects_non_power_of_two() {
        Topology::Benes { log2_m: 2 }.num_nodes(6);
    }

    #[test]
    fn benes_serde_roundtrip() {
        let t = Topology::Benes { log2_m: 3 };
        let s = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
