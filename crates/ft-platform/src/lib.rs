//! # ft-platform — heterogeneous target platforms
//!
//! Models the execution environment of the paper (§2): a set of processors
//! `P = {P1 … Pm}` connected by a dedicated network. Computational
//! heterogeneity is the function `E(t, Pk)` — the execution time of each
//! task on each processor — and communication heterogeneity is the per-link
//! unit delay `d(Pk, Ph)`, so a transfer of volume `V` between `Pk` and
//! `Ph` takes `V · d(Pk, Ph)` (and `d(Pk, Pk) = 0`: co-located tasks
//! communicate for free).
//!
//! The paper evaluates fully connected (clique) platforms; the conclusion
//! sketches sparse interconnects with routing tables as an easy extension,
//! and this crate implements both: [`Topology`] describes the physical
//! links, [`routing`] builds shortest-delay routing tables, and
//! [`Platform::delay`] returns end-to-end unit delays along the route.
//!
//! [`Instance`] bundles a task graph with a platform and the realized
//! execution-cost matrix; it exposes the paper's granularity measure
//! `g(G, P)` and the volume rescaling used by the experiment sweeps.

#![warn(missing_docs)]

pub mod exec;
pub mod gen;
pub mod ids;
pub mod instance;
pub mod platform;
pub mod routing;
pub mod topology;

pub use exec::ExecMatrix;
pub use gen::{random_instance, random_platform, PlatformParams};
pub use ids::ProcId;
pub use instance::Instance;
pub use platform::Platform;
pub use topology::Topology;
