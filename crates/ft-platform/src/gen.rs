//! Random platform and instance generation matching the paper's §6 setup.

use crate::exec::ExecMatrix;
use crate::instance::Instance;
use crate::platform::Platform;
use crate::topology::Topology;
use ft_graph::TaskGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::RangeInclusive;

/// Parameters for [`random_platform`] / [`random_instance`].
///
/// Defaults follow §6: "the unit message delay of the links … chosen
/// uniformly from the range `[0.5, 1]`". Computational heterogeneity is
/// modeled Topcuoglu-style: each processor gets a speed factor, and each
/// `(task, processor)` cost is `work(t) / speed(p)` perturbed by a small
/// inconsistency factor (so the matrix is neither perfectly consistent nor
/// fully random).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlatformParams {
    /// Number of processors `m` (the paper uses 10 and 20).
    pub procs: usize,
    /// Range of physical per-link unit delays.
    pub unit_delay: RangeInclusive<f64>,
    /// Range of processor speed factors (cost divisor).
    pub speed: RangeInclusive<f64>,
    /// Range of the per-(task, processor) inconsistency multiplier.
    pub noise: RangeInclusive<f64>,
    /// Interconnect shape; the paper's experiments use a clique.
    pub topology: Topology,
}

impl Default for PlatformParams {
    fn default() -> Self {
        PlatformParams {
            procs: 10,
            unit_delay: 0.5..=1.0,
            speed: 0.5..=2.0,
            noise: 0.9..=1.1,
            topology: Topology::Clique,
        }
    }
}

impl PlatformParams {
    /// Same parameters with a different processor count.
    pub fn with_procs(mut self, m: usize) -> Self {
        assert!(m >= 1);
        self.procs = m;
        self
    }

    /// Same parameters with a different topology.
    pub fn with_topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }
}

/// Draws a random platform: physical link delays uniform in
/// `params.unit_delay`, symmetric per link.
pub fn random_platform<R: Rng>(params: &PlatformParams, rng: &mut R) -> Platform {
    let m = params.procs;
    // Pre-draw a symmetric delay table so the Platform constructor closure
    // is deterministic. The table covers every graph node (switch vertices
    // included on multistage topologies; n == m on flat ones, so the draw
    // sequence there is unchanged).
    let n = params.topology.num_nodes(m);
    let mut table = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sample(rng, params.unit_delay.clone());
            table[i * n + j] = d;
            table[j * n + i] = d;
        }
    }
    Platform::new(m, params.topology.clone(), move |a, b| table[a * n + b])
}

/// Draws the execution matrix for a graph on a platform: per-processor
/// speeds in `params.speed`, per-entry noise in `params.noise`.
pub fn random_exec<R: Rng>(graph: &TaskGraph, params: &PlatformParams, rng: &mut R) -> ExecMatrix {
    let m = params.procs;
    let speeds: Vec<f64> = (0..m).map(|_| sample(rng, params.speed.clone())).collect();
    let v = graph.num_tasks();
    let mut noise = Vec::with_capacity(v * m);
    for _ in 0..v * m {
        noise.push(sample(rng, params.noise.clone()));
    }
    ExecMatrix::from_fn(v, m, |t, p| {
        graph.work(t) / speeds[p.index()] * noise[t.index() * m + p.index()]
    })
}

/// Draws a full instance (platform + exec matrix) for a given graph, then
/// rescales edge volumes so the realized granularity equals `granularity`
/// (if the graph communicates at all).
pub fn random_instance<R: Rng>(
    graph: TaskGraph,
    params: &PlatformParams,
    granularity: f64,
    rng: &mut R,
) -> Instance {
    let platform = random_platform(params, rng);
    let exec = random_exec(&graph, params, rng);
    let mut inst = Instance::new(graph, platform, exec);
    inst.set_granularity(granularity);
    inst
}

fn sample<R: Rng>(rng: &mut R, r: RangeInclusive<f64>) -> f64 {
    if r.start() == r.end() {
        *r.start()
    } else {
        rng.gen_range(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::{random_layered, RandomDagParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn platform_delays_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_platform(&PlatformParams::default(), &mut rng);
        assert_eq!(p.num_procs(), 10);
        for k in p.procs() {
            for h in p.procs() {
                if k != h {
                    let d = p.delay(k, h);
                    assert!((0.5..=1.0).contains(&d), "delay {d}");
                    assert_eq!(d, p.delay(h, k), "delays are symmetric");
                }
            }
        }
    }

    #[test]
    fn instance_hits_target_granularity() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = random_layered(&RandomDagParams::default(), &mut rng);
        for target in [0.2, 1.0, 5.0, 10.0] {
            let inst = random_instance(g.clone(), &PlatformParams::default(), target, &mut rng);
            assert!(
                (inst.granularity() - target).abs() < 1e-9,
                "target {target}, got {}",
                inst.granularity()
            );
        }
    }

    #[test]
    fn exec_costs_scale_with_work() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_layered(&RandomDagParams::default(), &mut rng);
        let params = PlatformParams::default();
        let exec = random_exec(&g, &params, &mut rng);
        // Fastest possible cost: work / max_speed * min_noise; slowest:
        // work / min_speed * max_noise.
        for t in g.tasks() {
            for p in 0..params.procs {
                let c = exec.cost(t, crate::ids::ProcId::from_index(p));
                let lo = g.work(t) / 2.0 * 0.9;
                let hi = g.work(t) / 0.5 * 1.1;
                assert!(c >= lo - 1e-9 && c <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = {
            let mut rng = StdRng::seed_from_u64(8);
            random_layered(&RandomDagParams::default(), &mut rng)
        };
        let i1 = random_instance(
            g.clone(),
            &PlatformParams::default(),
            1.0,
            &mut StdRng::seed_from_u64(9),
        );
        let i2 = random_instance(
            g,
            &PlatformParams::default(),
            1.0,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(i1.granularity(), i2.granularity());
        assert_eq!(i1.mean_task_cost(), i2.mean_task_cost());
    }
}
