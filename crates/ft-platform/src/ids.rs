//! Processor identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor. Dense: a platform with `m` processors uses
/// ids `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a `usize`, for indexing per-processor vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ProcId` from a vector index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ProcId(u32::try_from(i).expect("processor index exceeds u32"))
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        assert_eq!(ProcId::from_index(4).index(), 4);
        assert_eq!(ProcId(2).to_string(), "P2");
    }
}
