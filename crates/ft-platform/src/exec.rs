//! The execution-cost matrix `E(t, P)`.

use crate::ids::ProcId;
use ft_graph::TaskId;
use serde::{Deserialize, Serialize};

/// Dense `v × m` matrix of execution times: `E(t, Pk)` is the time task `t`
/// takes on processor `Pk` (§2 of the paper). Row-major by task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecMatrix {
    v: usize,
    m: usize,
    costs: Vec<f64>,
}

impl ExecMatrix {
    /// Builds the matrix from a cost function.
    ///
    /// # Panics
    /// Panics if any cost is negative or non-finite.
    pub fn from_fn<F>(v: usize, m: usize, mut f: F) -> Self
    where
        F: FnMut(TaskId, ProcId) -> f64,
    {
        let mut costs = Vec::with_capacity(v * m);
        for t in 0..v {
            for p in 0..m {
                let c = f(TaskId::from_index(t), ProcId::from_index(p));
                assert!(
                    c.is_finite() && c >= 0.0,
                    "execution cost must be finite and non-negative, got {c}"
                );
                costs.push(c);
            }
        }
        ExecMatrix { v, m, costs }
    }

    /// Number of tasks (rows).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.v
    }

    /// Number of processors (columns).
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// `E(t, p)`.
    #[inline]
    pub fn cost(&self, t: TaskId, p: ProcId) -> f64 {
        self.costs[t.index() * self.m + p.index()]
    }

    /// Row of execution times for one task.
    #[inline]
    pub fn row(&self, t: TaskId) -> &[f64] {
        &self.costs[t.index() * self.m..(t.index() + 1) * self.m]
    }

    /// Mean execution time of `t` over all processors — the node weight used
    /// by HEFT-style priorities.
    pub fn mean(&self, t: TaskId) -> f64 {
        let row = self.row(t);
        row.iter().sum::<f64>() / self.m as f64
    }

    /// Slowest execution time of `t` (the granularity numerator term).
    pub fn slowest(&self, t: TaskId) -> f64 {
        self.row(t).iter().copied().fold(0.0, f64::max)
    }

    /// Fastest execution time of `t`.
    pub fn fastest(&self, t: TaskId) -> f64 {
        self.row(t).iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecMatrix {
        // 2 tasks × 3 procs; E(t, p) = (t+1) * (p+1).
        ExecMatrix::from_fn(2, 3, |t, p| ((t.index() + 1) * (p.index() + 1)) as f64)
    }

    #[test]
    fn indexing() {
        let e = sample();
        assert_eq!(e.cost(TaskId(0), ProcId(0)), 1.0);
        assert_eq!(e.cost(TaskId(1), ProcId(2)), 6.0);
        assert_eq!(e.row(TaskId(1)), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn statistics() {
        let e = sample();
        assert_eq!(e.mean(TaskId(0)), 2.0);
        assert_eq!(e.slowest(TaskId(1)), 6.0);
        assert_eq!(e.fastest(TaskId(1)), 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_cost() {
        ExecMatrix::from_fn(1, 1, |_, _| -1.0);
    }
}
