//! The platform: processors, links, unit delays.

use crate::ids::ProcId;
use crate::routing::{shortest_routes, Routes};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A heterogeneous platform of `m` processors.
///
/// Per §2 of the paper: processors are connected by dedicated links;
/// `d(Pk, Ph)` is the time to ship one unit of data from `Pk` to `Ph`
/// (`d(Pk, Pk) = 0`). On a [`Topology::Clique`] the end-to-end delay is the
/// physical link delay; on sparse topologies it is the sum along the
/// shortest-delay route.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Platform {
    m: usize,
    /// Total graph nodes: `m` for flat topologies, processors plus switch
    /// vertices for multistage ones ([`Topology::num_nodes`]).
    nodes: usize,
    topology: Topology,
    /// Physical per-link unit delays, symmetric, `nodes * nodes` (entries
    /// for non-adjacent pairs are unused).
    link_delay: Vec<f64>,
    /// Precomputed end-to-end unit delays along routes, `nodes * nodes`.
    delay: Vec<f64>,
    /// Precomputed first hops, `nodes * nodes` (u32::MAX on diagonal).
    next_hop: Vec<u32>,
}

impl Platform {
    /// Builds a platform from a topology and a symmetric physical-delay
    /// function on adjacent pairs.
    ///
    /// # Panics
    /// Panics if `m == 0`, the topology is disconnected, or a delay is not
    /// strictly positive/finite.
    pub fn new<F>(m: usize, topology: Topology, physical_delay: F) -> Self
    where
        F: Fn(usize, usize) -> f64,
    {
        assert!(m >= 1, "platform needs at least one processor");
        assert!(
            topology.is_connected(m),
            "topology must connect all processors"
        );
        let nodes = topology.num_nodes(m);
        let adj = topology.adjacency(m);
        let mut link_delay = vec![0.0; nodes * nodes];
        for (i, neigh) in adj.iter().enumerate() {
            for &j in neigh {
                let d = physical_delay(i.min(j), i.max(j));
                assert!(
                    d.is_finite() && d > 0.0,
                    "link delay must be positive and finite, got {d}"
                );
                link_delay[i * nodes + j] = d;
                link_delay[j * nodes + i] = d;
            }
        }
        let routes: Routes = shortest_routes(nodes, &adj, |a, b| link_delay[a * nodes + b]);
        Platform {
            m,
            nodes,
            topology,
            link_delay,
            delay: routes.delay,
            next_hop: routes.next,
        }
    }

    /// Fully connected platform with one shared unit delay (homogeneous
    /// network) — convenient for tests and examples.
    pub fn uniform_clique(m: usize, delay: f64) -> Self {
        Platform::new(m, Topology::Clique, move |_, _| delay)
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.m
    }

    /// Iterator over all processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.m).map(ProcId::from_index)
    }

    /// The topology this platform was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total number of graph nodes (processors plus switch vertices).
    /// Equals [`Platform::num_procs`] on flat topologies.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// End-to-end unit delay `d(Pk, Ph)` (0 when `k == h`).
    #[inline]
    pub fn delay(&self, k: ProcId, h: ProcId) -> f64 {
        self.delay[k.index() * self.nodes + h.index()]
    }

    /// Physical unit delay of the direct link between adjacent processors
    /// (0 if not adjacent).
    #[inline]
    pub fn physical_delay(&self, k: ProcId, h: ProcId) -> f64 {
        self.link_delay[k.index() * self.nodes + h.index()]
    }

    /// Physical unit delay of the direct link between two graph nodes
    /// (0 if not adjacent). Node-level twin of
    /// [`Platform::physical_delay`] reaching switch vertices too.
    #[inline]
    pub fn node_link_delay(&self, a: usize, b: usize) -> f64 {
        self.link_delay[a * self.nodes + b]
    }

    /// The route from `k` to `h`, both endpoints included.
    ///
    /// On multistage topologies intermediate hops are switch vertices;
    /// use [`Platform::node_route`] there, where switch indices are not
    /// meaningful [`ProcId`]s.
    pub fn route(&self, k: ProcId, h: ProcId) -> Vec<ProcId> {
        let mut path = vec![k];
        let mut cur = k.index();
        let dst = h.index();
        while cur != dst {
            let nxt = self.next_hop[cur * self.nodes + dst];
            assert!(nxt != u32::MAX, "no route from {k} to {h}");
            cur = nxt as usize;
            path.push(ProcId::from_index(cur));
        }
        path
    }

    /// The shortest-delay route between two graph nodes as raw node
    /// indices, both endpoints included.
    pub fn node_route(&self, from: usize, to: usize) -> Vec<usize> {
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            let nxt = self.next_hop[cur * self.nodes + to];
            assert!(nxt != u32::MAX, "no route from node {from} to node {to}");
            cur = nxt as usize;
            path.push(cur);
        }
        path
    }

    /// True if `k` and `h` share a physical link.
    pub fn adjacent(&self, k: ProcId, h: ProcId) -> bool {
        k != h && self.link_delay[k.index() * self.nodes + h.index()] > 0.0
    }

    /// Largest end-to-end delay over distinct processor pairs — the
    /// "slowest link", used by the granularity measure.
    pub fn max_delay(&self) -> f64 {
        let mut best = 0.0f64;
        for k in 0..self.m {
            for h in 0..self.m {
                if k != h {
                    best = best.max(self.delay[k * self.nodes + h]);
                }
            }
        }
        best
    }

    /// Mean end-to-end delay over distinct ordered processor pairs (0 for
    /// m = 1). Used as the edge-weight averaging constant in priority
    /// computation.
    pub fn mean_delay(&self) -> f64 {
        if self.m <= 1 {
            return 0.0;
        }
        let mut sum = 0.0;
        for k in 0..self.m {
            for h in 0..self.m {
                if k != h {
                    sum += self.delay[k * self.nodes + h];
                }
            }
        }
        sum / (self.m * (self.m - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_clique_delays() {
        let p = Platform::uniform_clique(4, 0.75);
        assert_eq!(p.num_procs(), 4);
        for k in p.procs() {
            for h in p.procs() {
                let expect = if k == h { 0.0 } else { 0.75 };
                assert_eq!(p.delay(k, h), expect);
            }
        }
        assert_eq!(p.max_delay(), 0.75);
        assert_eq!(p.mean_delay(), 0.75);
    }

    #[test]
    fn star_end_to_end_delay_sums_hops() {
        let p = Platform::new(4, Topology::Star, |_, _| 0.5);
        let a = ProcId(1);
        let b = ProcId(2);
        assert_eq!(p.delay(a, b), 1.0);
        assert_eq!(p.route(a, b), vec![ProcId(1), ProcId(0), ProcId(2)]);
        assert!(p.adjacent(ProcId(0), ProcId(3)));
        assert!(!p.adjacent(a, b));
    }

    #[test]
    fn single_processor_platform() {
        let p = Platform::uniform_clique(1, 1.0);
        assert_eq!(p.num_procs(), 1);
        assert_eq!(p.mean_delay(), 0.0);
        assert_eq!(p.delay(ProcId(0), ProcId(0)), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_disconnected() {
        Platform::new(3, Topology::Custom(vec![(0, 1)]), |_, _| 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_delay() {
        Platform::uniform_clique(2, 0.0);
    }

    #[test]
    fn benes_platform_routes_through_switches() {
        let p = Platform::new(4, Topology::Benes { log2_m: 2 }, |_, _| 0.5);
        assert_eq!(p.num_procs(), 4);
        assert_eq!(p.num_nodes(), 20);
        for k in 0..4u32 {
            for h in 0..4u32 {
                if k == h {
                    continue;
                }
                let path = p.node_route(k as usize, h as usize);
                assert_eq!(*path.first().unwrap(), k as usize);
                assert_eq!(*path.last().unwrap(), h as usize);
                // Interior hops are switch vertices; every hop crosses a
                // physical link and the hop delays sum to the end-to-end
                // delay table.
                let mut sum = 0.0;
                for w in path.windows(2) {
                    let d = p.node_link_delay(w[0], w[1]);
                    assert!(d > 0.0, "route hop {w:?} not a physical link");
                    sum += d;
                }
                assert!((sum - p.delay(ProcId(k), ProcId(h))).abs() < 1e-12);
                assert!(!p.adjacent(ProcId(k), ProcId(h)));
            }
        }
        // Uniform 0.5 link delay, proc-pair hop diameter 2r = 4.
        assert_eq!(p.max_delay(), 2.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Platform::new(5, Topology::Ring, |a, b| (a + b) as f64 * 0.1 + 0.2);
        let s = serde_json::to_string(&p).unwrap();
        let p2: Platform = serde_json::from_str(&s).unwrap();
        assert_eq!(p2.num_procs(), 5);
        for k in p.procs() {
            for h in p.procs() {
                // JSON float round-trips can differ in the last ulp
                // depending on the serde_json float mode; compare loosely.
                assert!((p.delay(k, h) - p2.delay(k, h)).abs() < 1e-9);
            }
        }
    }
}
