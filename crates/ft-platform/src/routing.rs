//! Shortest-delay routing over sparse topologies.
//!
//! Implements the extension sketched in the paper's conclusion: "each
//! processor is provided with a routing table which indicates the route to
//! be used to communicate with another processor". Routes minimize total
//! unit delay (Dijkstra per source); ties break towards smaller next-hop
//! indices so tables are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Routing tables: end-to-end delays and next hops for every ordered pair.
#[derive(Clone, Debug)]
pub struct Routes {
    m: usize,
    /// `delay[k * m + h]` — total unit delay from k to h (0 on diagonal,
    /// `f64::INFINITY` if unreachable).
    pub delay: Vec<f64>,
    /// `next[k * m + h]` — first hop on the route from k to h
    /// (`u32::MAX` when unreachable or k == h).
    pub next: Vec<u32>,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (dist, node): invert the comparison.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// All-pairs shortest-delay routes.
///
/// `adj` is the undirected adjacency structure; `link_delay(i, j)` must
/// return the unit delay of the physical link between adjacent `i, j`.
pub fn shortest_routes<F>(m: usize, adj: &[Vec<usize>], link_delay: F) -> Routes
where
    F: Fn(usize, usize) -> f64,
{
    let mut delay = vec![f64::INFINITY; m * m];
    let mut next = vec![u32::MAX; m * m];
    for src in 0..m {
        // Dijkstra from src; record each node's *predecessor* to recover
        // first hops.
        let mut dist = vec![f64::INFINITY; m];
        let mut first_hop = vec![u32::MAX; m];
        let mut done = vec![false; m];
        dist[src] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            node: src,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            for &v in &adj[u] {
                let w = link_delay(u, v);
                debug_assert!(w > 0.0, "physical link delay must be positive");
                let nd = d + w;
                if nd < dist[v] - 1e-15 {
                    dist[v] = nd;
                    first_hop[v] = if u == src { v as u32 } else { first_hop[u] };
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        for h in 0..m {
            delay[src * m + h] = if h == src { 0.0 } else { dist[h] };
            next[src * m + h] = first_hop[h];
        }
    }
    Routes { m, delay, next }
}

impl Routes {
    /// Full route from `k` to `h`, both endpoints included.
    ///
    /// # Panics
    /// Panics if `h` is unreachable from `k`.
    pub fn route(&self, k: usize, h: usize) -> Vec<usize> {
        let mut path = vec![k];
        let mut cur = k;
        while cur != h {
            let nxt = self.next[cur * self.m + h];
            assert!(nxt != u32::MAX, "no route from {k} to {h}");
            cur = nxt as usize;
            path.push(cur);
        }
        path
    }

    /// End-to-end delay from `k` to `h`.
    #[inline]
    pub fn delay(&self, k: usize, h: usize) -> f64 {
        self.delay[k * self.m + h]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn clique_routes_are_direct() {
        let m = 4;
        let adj = Topology::Clique.adjacency(m);
        let r = shortest_routes(m, &adj, |_, _| 1.0);
        for k in 0..m {
            for h in 0..m {
                if k != h {
                    assert_eq!(r.route(k, h), vec![k, h]);
                    assert_eq!(r.delay(k, h), 1.0);
                }
            }
        }
    }

    #[test]
    fn ring_routes_take_short_side() {
        let m = 6;
        let adj = Topology::Ring.adjacency(m);
        let r = shortest_routes(m, &adj, |_, _| 1.0);
        assert_eq!(r.delay(0, 3), 3.0); // either way round
        assert_eq!(r.delay(0, 1), 1.0);
        assert_eq!(r.delay(0, 5), 1.0); // wraps
        assert_eq!(r.route(0, 2), vec![0, 1, 2]);
    }

    #[test]
    fn star_routes_pass_through_hub() {
        let m = 5;
        let adj = Topology::Star.adjacency(m);
        let r = shortest_routes(m, &adj, |_, _| 2.0);
        assert_eq!(r.route(1, 3), vec![1, 0, 3]);
        assert_eq!(r.delay(1, 3), 4.0);
        assert_eq!(r.route(0, 4), vec![0, 4]);
    }

    #[test]
    fn heterogeneous_delays_pick_cheaper_path() {
        // Triangle 0-1-2 where direct 0→2 is expensive.
        let t = Topology::Custom(vec![(0, 1), (1, 2), (0, 2)]);
        let adj = t.adjacency(3);
        let delays = move |a: usize, b: usize| -> f64 {
            match (a.min(b), a.max(b)) {
                (0, 1) => 1.0,
                (1, 2) => 1.0,
                (0, 2) => 5.0,
                _ => unreachable!(),
            }
        };
        let r = shortest_routes(3, &adj, delays);
        assert_eq!(r.route(0, 2), vec![0, 1, 2]);
        assert_eq!(r.delay(0, 2), 2.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let t = Topology::Custom(vec![(0, 1)]);
        let adj = t.adjacency(3);
        let r = shortest_routes(3, &adj, |_, _| 1.0);
        assert!(r.delay(0, 2).is_infinite());
    }
}
