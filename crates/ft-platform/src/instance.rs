//! A scheduling problem instance: task graph + platform + realized costs.

use crate::exec::ExecMatrix;
use crate::ids::ProcId;
use crate::platform::Platform;
use ft_graph::granularity::{granularity, volume_scale_for_target};
use ft_graph::{EdgeId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Everything the schedulers need: the DAG, the platform, and the
/// execution-cost matrix binding them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Instance {
    /// The application DAG (edge volumes in data units).
    pub graph: TaskGraph,
    /// The target platform (unit delays per processor pair).
    pub platform: Platform,
    /// `E(t, P)` execution times.
    pub exec: ExecMatrix,
}

impl Instance {
    /// Bundles the three parts, validating dimensions.
    pub fn new(graph: TaskGraph, platform: Platform, exec: ExecMatrix) -> Self {
        assert_eq!(
            exec.num_tasks(),
            graph.num_tasks(),
            "exec matrix rows must match task count"
        );
        assert_eq!(
            exec.num_procs(),
            platform.num_procs(),
            "exec matrix columns must match processor count"
        );
        Instance {
            graph,
            platform,
            exec,
        }
    }

    /// `E(t, p)`.
    #[inline]
    pub fn exec_time(&self, t: TaskId, p: ProcId) -> f64 {
        self.exec.cost(t, p)
    }

    /// Wall-clock communication time `W(e) = V(e) · d(Pk, Ph)` for edge `e`
    /// when the endpoints are mapped on `k` and `h` (0 when co-located).
    #[inline]
    pub fn comm_time(&self, e: EdgeId, k: ProcId, h: ProcId) -> f64 {
        self.graph.edge(e).volume * self.platform.delay(k, h)
    }

    /// Mean communication time of edge `e` over distinct processor pairs —
    /// the edge weight used by HEFT-style priorities.
    pub fn mean_comm(&self, e: EdgeId) -> f64 {
        self.graph.edge(e).volume * self.platform.mean_delay()
    }

    /// Slowest communication time of edge `e` (granularity denominator).
    pub fn slowest_comm(&self, e: EdgeId) -> f64 {
        self.graph.edge(e).volume * self.platform.max_delay()
    }

    /// The paper's granularity `g(G, P)`: total slowest computation over
    /// total slowest communication.
    pub fn granularity(&self) -> f64 {
        granularity(
            &self.graph,
            |t| self.exec.slowest(t),
            |e| self.slowest_comm(e),
        )
    }

    /// Rescales every edge volume so the realized granularity equals
    /// `target`. No-op (returns false) on graphs without communication.
    pub fn set_granularity(&mut self, target: f64) -> bool {
        let scale = volume_scale_for_target(
            &self.graph,
            |t| self.exec.slowest(t),
            |e| self.slowest_comm(e),
            target,
        );
        match scale {
            Some(s) => {
                self.graph = self.graph.scale_volumes(s);
                true
            }
            None => false,
        }
    }

    /// Mean execution time of one task across tasks and processors — the
    /// normalization constant for "normalized latency" in the experiments
    /// (the paper does not define its normalization; see DESIGN.md §2).
    pub fn mean_task_cost(&self) -> f64 {
        let v = self.graph.num_tasks();
        if v == 0 {
            return 1.0;
        }
        let sum: f64 = self.graph.tasks().map(|t| self.exec.mean(t)).sum();
        sum / v as f64
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.platform.num_procs()
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.graph.num_tasks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::GraphBuilder;

    fn small_instance() -> Instance {
        let mut b = GraphBuilder::new();
        let a = b.add_task(2.0);
        let c = b.add_task(4.0);
        b.add_edge(a, c, 10.0).unwrap();
        let graph = b.build();
        let platform = Platform::uniform_clique(2, 0.5);
        let exec = ExecMatrix::from_fn(2, 2, |t, p| graph.work(t) * (1.0 + p.index() as f64));
        Instance::new(graph, platform, exec)
    }

    #[test]
    fn comm_time_uses_delay() {
        let inst = small_instance();
        assert_eq!(inst.comm_time(EdgeId(0), ProcId(0), ProcId(1)), 5.0);
        assert_eq!(inst.comm_time(EdgeId(0), ProcId(1), ProcId(1)), 0.0);
    }

    #[test]
    fn granularity_matches_definition() {
        let inst = small_instance();
        // slowest comp: 2*2 + 4*2 = 12; slowest comm: 10*0.5 = 5.
        assert_eq!(inst.granularity(), 12.0 / 5.0);
    }

    #[test]
    fn set_granularity_rescales() {
        let mut inst = small_instance();
        assert!(inst.set_granularity(1.0));
        assert!((inst.granularity() - 1.0).abs() < 1e-12);
        assert!(inst.set_granularity(7.5));
        assert!((inst.granularity() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn mean_task_cost() {
        let inst = small_instance();
        // task 0: (2 + 4)/2 = 3; task 1: (4 + 8)/2 = 6; mean = 4.5.
        assert_eq!(inst.mean_task_cost(), 4.5);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_rejected() {
        let mut b = GraphBuilder::new();
        b.add_task(1.0);
        let graph = b.build();
        let platform = Platform::uniform_clique(2, 1.0);
        let exec = ExecMatrix::from_fn(3, 2, |_, _| 1.0);
        Instance::new(graph, platform, exec);
    }
}
