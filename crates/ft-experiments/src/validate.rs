//! The validation harness: every headline claim of EXPERIMENTS.md pinned
//! by a committed, CI-checked `VALIDATION_<family>.json` record.
//!
//! Byte-for-byte golden files guard the *engine*; this module guards the
//! *conclusions*. Each experiment family — the §6 `grid`, the online
//! `degradation` sweep, the `transient` rejuvenation sweep, the
//! `adaptive` checkpoint comparison, and the `network` recovery-storm
//! sweep — evaluates a list of claims, each a
//! single scalar distilled from the experiment (a completion rate, an
//! overhead ratio, a dominance fraction) and compared against a committed
//! target:
//!
//! ```text
//! claim                         target    predicted   error    tol   status
//! caft_overhead_below_ftsa      1.0000    1.0000      0.0000   0.00  PASSED
//! ```
//!
//! A claim **PASSES** when `|predicted − target|` (relative to the target
//! when it is nonzero) is within the claim's tolerance. The committed
//! records live in `validation/` at the repo root and are evaluated at
//! the quick dimensions on every CI run (`paper-figures validate
//! --quick`, `tests/validation.rs`); refreshing them after an intentional
//! change is `paper-figures validate --quick --bless`, which rewrites
//! each target to the new prediction while **keeping** the committed
//! tolerance — a hand-widened tolerance survives a bless.
//!
//! Claims read their scalars from [`BatchSummary::metrics`] (the
//! [`MetricSet`](ft_runtime::MetricSet) histograms) wherever the metric
//! exists there, exercising the observability substrate end-to-end; one
//! claim per sweep family pins the histogram-derived values to the legacy
//! scalar fields so the two paths cannot drift.

use crate::degradation::{run_degradation, DegradationConfig, DegradationRow};
use crate::grid::{run_grid, GridConfig, GridResult};
use crate::storm::{ranking_flips, run_storm, StormConfig, StormRow};
use ft_runtime::{BatchSummary, Contention, RecoveryPolicy};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The experiment families with a committed validation record, in
/// evaluation order.
pub const FAMILIES: [&str; 5] = ["grid", "degradation", "transient", "adaptive", "network"];

/// One validated claim: a scalar prediction against a committed target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Claim {
    /// Stable identifier (the join key across blesses).
    pub id: String,
    /// What the scalar is, in one sentence.
    pub description: String,
    /// The committed expectation.
    pub target: f64,
    /// The value this evaluation measured.
    pub predicted: f64,
    /// `|predicted − target| / |target|` (absolute when the target is 0).
    pub error: f64,
    /// Maximum error that still passes.
    pub tolerance: f64,
    /// `"PASSED"` or `"FAILED"`.
    pub status: String,
}

impl Claim {
    /// Whether this claim passed.
    pub fn passed(&self) -> bool {
        self.status == "PASSED"
    }
}

/// The validation record of one experiment family.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FamilyValidation {
    /// Family name (an entry of [`FAMILIES`]).
    pub family: String,
    /// Whether the record was evaluated at the quick (CI) dimensions.
    pub quick: bool,
    /// Every claim of the family.
    pub claims: Vec<Claim>,
}

impl FamilyValidation {
    /// Whether every claim passed.
    pub fn passed(&self) -> bool {
        self.claims.iter().all(Claim::passed)
    }

    /// The committed claim with the given id, if any.
    pub fn claim(&self, id: &str) -> Option<&Claim> {
        self.claims.iter().find(|c| c.id == id)
    }

    /// The PASS bound `target × (1 + tolerance)` of a claim — the upper
    /// bound consumers like `tests/paper_claims.rs` assert against so
    /// their thresholds cannot drift from the committed record.
    pub fn upper_bound(&self, id: &str) -> Option<f64> {
        self.claim(id).map(|c| c.target * (1.0 + c.tolerance))
    }

    /// The PASS bound `target × (1 − tolerance)` — the floor consumers
    /// assert against for minimum-ratio claims.
    pub fn lower_bound(&self, id: &str) -> Option<f64> {
        self.claim(id).map(|c| c.target * (1.0 - c.tolerance))
    }
}

/// One measured scalar before it is joined with the committed record.
struct Measurement {
    id: &'static str,
    description: &'static str,
    predicted: f64,
    /// Target used when the committed record has no claim with this id
    /// (first evaluation, or a claim added since the last bless).
    default_target: f64,
    /// Tolerance used in the same case.
    default_tolerance: f64,
}

fn m(
    id: &'static str,
    description: &'static str,
    predicted: f64,
    default_target: f64,
    default_tolerance: f64,
) -> Measurement {
    Measurement {
        id,
        description,
        predicted,
        default_target,
        default_tolerance,
    }
}

/// Relative error against a nonzero target, absolute otherwise.
fn claim_error(predicted: f64, target: f64) -> f64 {
    let abs = (predicted - target).abs();
    if target.abs() > 1e-12 {
        abs / target.abs()
    } else {
        abs
    }
}

fn evaluate(
    family: &str,
    quick: bool,
    measurements: Vec<Measurement>,
    committed: Option<&FamilyValidation>,
) -> FamilyValidation {
    let claims = measurements
        .into_iter()
        .map(|meas| {
            let committed_claim = committed.and_then(|f| f.claim(meas.id));
            let target = committed_claim.map_or(meas.default_target, |c| c.target);
            let tolerance = committed_claim.map_or(meas.default_tolerance, |c| c.tolerance);
            let error = claim_error(meas.predicted, target);
            // A NaN prediction (e.g. a mean over an empty histogram)
            // makes `error <= tolerance` comparison-direction-dependent;
            // classify it explicitly so it can never read as PASSED.
            let status = if !meas.predicted.is_finite() || !error.is_finite() {
                "FAILED (non-finite)".to_string()
            } else if error <= tolerance + 1e-12 {
                "PASSED".to_string()
            } else {
                "FAILED".to_string()
            };
            Claim {
                id: meas.id.to_string(),
                description: meas.description.to_string(),
                target,
                predicted: meas.predicted,
                error,
                tolerance,
                status,
            }
        })
        .collect();
    FamilyValidation {
        family: family.to_string(),
        quick,
        claims,
    }
}

/// Re-targets a freshly evaluated record: every target becomes its
/// prediction (so every claim passes), while tolerances are kept from
/// the evaluation — which itself kept any committed tolerance — so a
/// hand-widened tolerance survives the bless.
pub fn bless(mut record: FamilyValidation) -> FamilyValidation {
    for c in &mut record.claims {
        c.target = c.predicted;
        c.error = 0.0;
        c.status = "PASSED".to_string();
    }
    record
}

// ---------------------------------------------------------------------------
// Family configurations

/// The grid configuration of the `grid` family.
pub fn grid_config(quick: bool) -> GridConfig {
    let cfg = GridConfig::paper();
    if quick {
        cfg.quick(2)
    } else {
        cfg
    }
}

/// The sweep configuration of the `degradation` family (the permanent
/// fail-stop baseline; quick = the golden-file dimensions).
pub fn degradation_config(quick: bool) -> DegradationConfig {
    if quick {
        DegradationConfig {
            tasks: 25,
            procs: 6,
            runs: 40,
            mttf_factors: vec![8.0, 2.0, 1.0],
            ..Default::default()
        }
    } else {
        DegradationConfig::default()
    }
}

/// The sweep configuration of the `transient` family: the degradation
/// dimensions with exponential repairs of mean `0.25 ×` nominal — the
/// rejuvenation experiment.
pub fn transient_config(quick: bool) -> DegradationConfig {
    DegradationConfig {
        mttr_factor: Some(0.25),
        ..degradation_config(quick)
    }
}

/// The sweep configuration of the `adaptive` family: a non-trivial
/// checkpoint premium (`0.1 ×` mean task cost) and an MTTF axis with the
/// 8×/4× cells of the headline claim, so the per-rate Young/Daly interval
/// has something to price against the fixed columns.
pub fn adaptive_config(quick: bool) -> DegradationConfig {
    DegradationConfig {
        checkpoint_overhead: 0.1,
        mttf_factors: vec![8.0, 4.0, 2.0, 1.0],
        ..degradation_config(quick)
    }
}

/// The sweep configuration of the `network` family: the recovery-storm
/// experiment on the Beneš interconnect (quick thins the Monte-Carlo
/// run count; the workload and burst axis are shared so the flip cell
/// is the same one the full lane measures).
pub fn storm_config(quick: bool) -> StormConfig {
    StormConfig {
        runs: if quick { 120 } else { 400 },
        ..StormConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Family evaluators

/// The claims are means/extrema over cells; completion and slowdown come
/// from the `MetricSet` histograms (see the module doc).
fn metric_completion(s: &BatchSummary) -> f64 {
    s.metrics.completion_rate()
}

fn metric_slowdown(s: &BatchSummary) -> f64 {
    s.metrics.mean_slowdown()
}

fn rows_at<'a>(
    rows: &'a [DegradationRow],
    factor: f64,
    pred: impl Fn(&RecoveryPolicy) -> bool + 'a,
) -> impl Iterator<Item = &'a DegradationRow> {
    rows.iter()
        .filter(move |r| r.mttf_factor == factor && pred(&r.summary.policy))
}

fn one_at<'a>(
    rows: &'a [DegradationRow],
    factor: f64,
    pred: impl Fn(&RecoveryPolicy) -> bool + 'a,
) -> &'a DegradationRow {
    rows_at(rows, factor, pred)
        .next()
        .expect("the sweep ran the full policy roster at every rate")
}

fn fraction(hits: usize, total: usize) -> f64 {
    hits as f64 / total.max(1) as f64
}

fn measure_grid(res: &GridResult) -> Vec<Measurement> {
    let cells = &res.cells;
    let n = cells.len();

    let below_ftsa = cells
        .iter()
        .filter(|c| c.point.caft.overhead_zero < c.point.ftsa.overhead_zero)
        .count();
    let below_ftbar = cells
        .iter()
        .filter(|c| c.point.caft.overhead_zero < c.point.ftbar.overhead_zero)
        .count();
    let proximity = cells
        .iter()
        .map(|c| c.point.caft.zero_crash / c.point.fault_free_caft)
        .fold(f64::NEG_INFINITY, f64::max);
    let msg_ratio = cells
        .iter()
        .map(|c| c.point.ftsa.remote_msgs / c.point.caft.remote_msgs)
        .fold(f64::INFINITY, f64::min);
    let strict_floor = cells
        .iter()
        .map(|c| c.point.caft_strict_completion)
        .fold(f64::INFINITY, f64::min);

    // Per platform setting: the FTSA − CAFT overhead gap at the coarsest
    // granularity over the gap at the finest (the paper's figures show
    // the gap collapsing as computation starts to dominate).
    let gap = |c: &crate::grid::GridCell| c.point.ftsa.overhead_zero - c.point.caft.overhead_zero;
    let mut shrink = 0.0;
    for &p in &res.config.platforms {
        let series = res.series(p);
        let first = gap(series.first().expect("non-empty grid series"));
        let last = gap(series.last().expect("non-empty grid series"));
        shrink += last / first;
    }
    shrink /= res.config.platforms.len() as f64;

    // ε-cost on the shared m = 10 draws: mean CAFT 0-crash overhead at
    // ε = 3 minus at ε = 1 (points are draw-for-draw comparable because
    // the grid shares instances across ε).
    let platform = |procs: usize, eps: usize| {
        res.config
            .platforms
            .iter()
            .copied()
            .find(|p| p.procs == procs && p.eps == eps)
            .expect("the paper grid has both m = 10 settings")
    };
    let eps1 = res.series(platform(10, 1));
    let eps3 = res.series(platform(10, 3));
    let eps_cost = eps1
        .iter()
        .zip(&eps3)
        .map(|(a, b)| b.point.caft.overhead_zero - a.point.caft.overhead_zero)
        .sum::<f64>()
        / eps1.len() as f64;

    // Platform-scoped extrema over the type-A granularity range
    // (g ≤ 2.0, the figure 1–3 sweeps): the bounds `tests/paper_claims.rs`
    // reads (via [`FamilyValidation::upper_bound`]/[`lower_bound`]) for
    // its figure assertions, so its thresholds track this record. The
    // coarse type-B cells are excluded — there every series converges and
    // the extrema would say nothing about the fine-grain regime the
    // figure claims are about.
    let in_a = |c: &&&crate::grid::GridCell| c.point.granularity <= 2.0 + 1e-9;
    let eps1_proximity = eps1
        .iter()
        .filter(in_a)
        .map(|c| c.point.caft.zero_crash / c.point.fault_free_caft)
        .fold(f64::NEG_INFINITY, f64::max);
    let ratio_floor = |series: &[&crate::grid::GridCell]| {
        series
            .iter()
            .filter(in_a)
            .map(|c| c.point.ftsa.remote_msgs / c.point.caft.remote_msgs)
            .fold(f64::INFINITY, f64::min)
    };
    let eps1_msg_floor = ratio_floor(&eps1);
    let eps3_msg_floor = ratio_floor(&eps3);

    vec![
        m(
            "caft_overhead_below_ftsa",
            "Fraction of grid cells where CAFT's 0-crash overhead is below FTSA's",
            fraction(below_ftsa, n),
            1.0,
            0.0,
        ),
        m(
            "caft_overhead_below_ftbar",
            "Fraction of grid cells where CAFT's 0-crash overhead is below FTBAR's",
            fraction(below_ftbar, n),
            1.0,
            0.0,
        ),
        m(
            "caft_fault_free_proximity",
            "Max over cells of CAFT 0-crash latency / fault-free CAFT latency",
            proximity,
            proximity,
            0.05,
        ),
        m(
            "ftsa_msg_ratio_floor",
            "Min over cells of FTSA remote messages / CAFT remote messages",
            msg_ratio,
            msg_ratio,
            0.05,
        ),
        m(
            "overhead_gap_shrinks_with_granularity",
            "Mean over platforms of the (FTSA - CAFT) overhead gap at the coarsest \
             granularity over the gap at the finest (< 1 = the gap collapses)",
            shrink,
            shrink,
            0.10,
        ),
        m(
            "eps_cost_on_shared_draws",
            "Mean extra CAFT 0-crash overhead (pct points) of eps = 3 over eps = 1 \
             on the shared m = 10 instance draws",
            eps_cost,
            eps_cost,
            0.05,
        ),
        m(
            "strict_completion_floor",
            "Min over cells of CAFT strict-replay completion (the Proposition 5.2 gap)",
            strict_floor,
            strict_floor,
            0.10,
        ),
        m(
            "eps1_fault_free_proximity",
            "Max over the m = 10, eps = 1 cells of CAFT 0-crash latency / fault-free \
             latency (the figure-1 'close to fault free' bound)",
            eps1_proximity,
            eps1_proximity,
            0.10,
        ),
        m(
            "eps1_msg_ratio_floor",
            "Min over the m = 10, eps = 1 cells of FTSA / CAFT remote messages (the \
             figure-1 linear-vs-quadratic message regime)",
            eps1_msg_floor,
            eps1_msg_floor,
            0.10,
        ),
        m(
            "eps3_msg_ratio_floor",
            "Min over the m = 10, eps = 3 cells of FTSA / CAFT remote messages (the \
             figure-2 scarce-singleton regime)",
            eps3_msg_floor,
            eps3_msg_floor,
            0.10,
        ),
    ]
}

fn measure_degradation(rows: &[DegradationRow], factors: &[f64]) -> Vec<Measurement> {
    let is = |p: RecoveryPolicy| move |q: &RecoveryPolicy| *q == p;
    let resched_mid = metric_completion(&one_at(rows, 2.0, is(RecoveryPolicy::Reschedule)).summary);

    let resched_dominates = fraction(
        factors
            .iter()
            .filter(|&&f| {
                metric_completion(&one_at(rows, f, is(RecoveryPolicy::Reschedule)).summary)
                    >= metric_completion(&one_at(rows, f, is(RecoveryPolicy::ReReplicate)).summary)
            })
            .count(),
        factors.len(),
    );

    let mut never_less = 0;
    let mut total = 0;
    for &f in factors {
        let absorb = metric_completion(&one_at(rows, f, is(RecoveryPolicy::Absorb)).summary);
        for r in rows_at(rows, f, |p| *p != RecoveryPolicy::Absorb) {
            total += 1;
            if metric_completion(&r.summary) >= absorb {
                never_less += 1;
            }
        }
    }

    let ck_beats = factors.iter().any(|&f| {
        let rerep = &one_at(rows, f, is(RecoveryPolicy::ReReplicate)).summary;
        rows_at(rows, f, |p| matches!(p, RecoveryPolicy::Checkpoint { .. })).any(|ck| {
            metric_completion(&ck.summary) >= metric_completion(rerep)
                && ck.summary.mean_latency < rerep.mean_latency
        })
    });

    let attrition_monotone = factors.windows(2).all(|w| {
        metric_completion(&one_at(rows, w[0], is(RecoveryPolicy::Absorb)).summary)
            >= metric_completion(&one_at(rows, w[1], is(RecoveryPolicy::Absorb)).summary)
    });

    // The plumbing claim: histogram-derived completion and slowdown must
    // agree with the legacy scalar fields in every cell of the sweep.
    let plumbing_drift = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            let dc = (metric_completion(s) - s.completion_rate()).abs();
            let ds = if s.completed == 0 {
                0.0 // both slowdowns are meaningless means over nothing
            } else {
                (metric_slowdown(s) - s.mean_slowdown).abs()
            };
            dc.max(ds)
        })
        .fold(0.0, f64::max);

    vec![
        m(
            "reschedule_completion_mttf2",
            "Completion rate of Reschedule at MTTF 2x nominal (from the MetricSet histograms)",
            resched_mid,
            resched_mid,
            0.10,
        ),
        m(
            "reschedule_dominates_rereplicate",
            "Fraction of rates where Reschedule completes at least as many runs as ReReplicate",
            resched_dominates,
            1.0,
            0.0,
        ),
        m(
            "recovery_never_completes_less",
            "Fraction of (rate, policy) cells completing at least as many runs as Absorb",
            fraction(never_less, total),
            1.0,
            0.0,
        ),
        m(
            "checkpoint_beats_rereplicate_somewhere",
            "Some (rate, interval) cell where checkpoint/restart completes as many runs \
             as ReReplicate at strictly lower mean latency (1 = yes)",
            if ck_beats { 1.0 } else { 0.0 },
            1.0,
            0.0,
        ),
        m(
            "absorb_attrition_monotone",
            "Absorb completion is non-increasing as the failure rate rises (1 = yes)",
            if attrition_monotone { 1.0 } else { 0.0 },
            1.0,
            0.0,
        ),
        m(
            "metrics_match_summary",
            "Max abs drift between histogram-derived completion/slowdown and the \
             legacy BatchSummary scalars, over every cell",
            plumbing_drift,
            0.0,
            1e-9,
        ),
    ]
}

fn measure_transient(
    transient: &[DegradationRow],
    permanent: &[DegradationRow],
    factors: &[f64],
) -> Vec<Measurement> {
    let is = |p: RecoveryPolicy| move |q: &RecoveryPolicy| *q == p;
    let harshest = factors.iter().copied().fold(f64::INFINITY, f64::min);

    let rr_transient =
        metric_completion(&one_at(transient, harshest, is(RecoveryPolicy::ReReplicate)).summary);
    let rr_permanent =
        metric_completion(&one_at(permanent, harshest, is(RecoveryPolicy::ReReplicate)).summary);

    let ws_parity = fraction(
        factors
            .iter()
            .filter(|&&f| {
                metric_completion(&one_at(transient, f, is(RecoveryPolicy::WarmSpare)).summary)
                    >= metric_completion(
                        &one_at(transient, f, is(RecoveryPolicy::ReReplicate)).summary,
                    )
            })
            .count(),
        factors.len(),
    );

    let ws_gain =
        metric_slowdown(&one_at(transient, harshest, is(RecoveryPolicy::ReReplicate)).summary)
            - metric_slowdown(&one_at(transient, harshest, is(RecoveryPolicy::WarmSpare)).summary);

    let rejoins_everywhere = fraction(
        transient.iter().filter(|r| r.summary.rejoins > 0).count(),
        transient.len(),
    );

    vec![
        m(
            "rejuvenation_completion_mttf1",
            "ReReplicate completion at MTTF 1x under transient failures (MTTR 0.25x)",
            rr_transient,
            rr_transient,
            0.05,
        ),
        m(
            "rejuvenation_lift_mttf1",
            "ReReplicate completion at MTTF 1x: transient minus permanent (the \
             rejuvenation payout, in completion-rate points)",
            rr_transient - rr_permanent,
            rr_transient - rr_permanent,
            0.15,
        ),
        m(
            "warm_spare_completion_parity",
            "Fraction of rates where WarmSpare completes at least as many runs as ReReplicate",
            ws_parity,
            1.0,
            0.0,
        ),
        m(
            "warm_spare_slowdown_gain_mttf1",
            "Mean-slowdown gain of WarmSpare over ReReplicate at MTTF 1x transient \
             (positive = pre-staging pays)",
            ws_gain,
            ws_gain,
            0.25,
        ),
        m(
            "rejoins_every_cell",
            "Fraction of transient cells observing at least one processor reboot",
            rejoins_everywhere,
            1.0,
            0.0,
        ),
    ]
}

fn measure_adaptive(rows: &[DegradationRow], factors: &[f64]) -> Vec<Measurement> {
    let adaptive_at = |f: f64| {
        rows_at(rows, f, |p| {
            matches!(p, RecoveryPolicy::AdaptiveCheckpoint { .. })
        })
        .next()
        .expect("one adaptive cell per rate")
    };
    let fixed_at = |f: f64| rows_at(rows, f, |p| matches!(p, RecoveryPolicy::Checkpoint { .. }));

    // The headline cells: at long MTTFs the per-rate Young/Daly interval
    // must complete at least as much as every fixed column.
    let beats_on_completion = |f: f64| {
        let a = metric_completion(&adaptive_at(f).summary);
        fixed_at(f).all(|fx| a >= metric_completion(&fx.summary))
    };

    let beats_both = |f: f64| {
        let a = &adaptive_at(f).summary;
        fixed_at(f).all(|fx| {
            metric_completion(a) > metric_completion(&fx.summary)
                || (metric_completion(a) >= metric_completion(&fx.summary)
                    && metric_slowdown(a) < metric_slowdown(&fx.summary))
        })
    };
    let somewhere = factors.iter().any(|&f| beats_both(f));

    // Premium ratio at the longest MTTF: the adaptive interval stretches
    // with the MTTF, so its per-run checkpoint overhead must undercut the
    // finest fixed column's.
    let longest = factors.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let fine = fixed_at(longest)
        .min_by(|a, b| {
            let iv = |r: &&DegradationRow| match r.summary.policy {
                RecoveryPolicy::Checkpoint { interval, .. } => interval,
                _ => f64::INFINITY,
            };
            iv(a).partial_cmp(&iv(b)).expect("finite intervals")
        })
        .expect("at least one fixed checkpoint column");
    let premium_ratio = adaptive_at(longest).summary.mean_checkpoint_overhead()
        / fine.summary.mean_checkpoint_overhead();

    vec![
        m(
            "adaptive_beats_fixed_completion_mttf8",
            "Adaptive checkpoint completes at least as many runs as every fixed column \
             at MTTF 8x (1 = yes)",
            if beats_on_completion(8.0) { 1.0 } else { 0.0 },
            1.0,
            0.0,
        ),
        m(
            "adaptive_beats_fixed_completion_mttf4",
            "Adaptive checkpoint completes at least as many runs as every fixed column \
             at MTTF 4x (1 = yes)",
            if beats_on_completion(4.0) { 1.0 } else { 0.0 },
            1.0,
            0.0,
        ),
        m(
            "adaptive_beats_every_fixed_somewhere",
            "Some rate where adaptive beats every fixed column outright — more \
             completions, or as many at strictly lower slowdown (1 = yes)",
            if somewhere { 1.0 } else { 0.0 },
            1.0,
            0.0,
        ),
        m(
            "adaptive_premium_ratio_mttf8",
            "Per-run checkpoint overhead of adaptive over the finest fixed column at \
             the longest MTTF (< 1 = Young/Daly prices the insurance down)",
            premium_ratio,
            premium_ratio,
            0.10,
        ),
    ]
}

fn measure_network(rows: &[StormRow]) -> Vec<Measurement> {
    let (ideal, contended): (Vec<&StormRow>, Vec<&StormRow>) =
        rows.iter().partition(|r| !r.contention.is_contended());

    // The identity half of the record: Ideal cells never touch the link
    // model (the byte-for-byte engine identity is pinned separately by
    // tests/timed_model.rs — this claim keeps the *sweep* on the
    // contention-free path).
    let ideal_clean = fraction(
        ideal
            .iter()
            .filter(|r| r.summary.metrics.net_transfers == 0)
            .count(),
        ideal.len(),
    );
    let charged = fraction(
        contended
            .iter()
            .filter(|r| r.summary.metrics.net_transfers > 0)
            .count(),
        contended.len(),
    );
    let collided = fraction(
        contended
            .iter()
            .filter(|r| r.summary.metrics.net_contended > 0)
            .count(),
        contended.len(),
    );

    let flips = ranking_flips(rows);
    let saturation = contended
        .iter()
        .map(|r| r.contended_share())
        .fold(0.0, f64::max);

    // How concentrated the storm is on the replanning policy: its
    // per-run contention delay over re-replication's, under fair
    // sharing at the largest burst.
    let largest = rows.iter().map(|r| r.burst).max().unwrap_or(0);
    let delay_of = |label: &str| {
        contended
            .iter()
            .find(|r| {
                r.burst == largest
                    && r.contention == Contention::FairShare
                    && r.summary.policy_label == label
            })
            .map(|r| r.delay_per_run())
            .unwrap_or(f64::NAN)
    };
    let amplification = delay_of("reschedule") / delay_of("re-replicate");

    vec![
        m(
            "ideal_cells_never_charge_links",
            "Fraction of Ideal storm cells with zero transfers charged against the network",
            ideal_clean,
            1.0,
            0.0,
        ),
        m(
            "contended_cells_charge_links",
            "Fraction of contended storm cells charging at least one transfer",
            charged,
            1.0,
            0.0,
        ),
        m(
            "storm_collides_on_shared_links",
            "Fraction of contended storm cells observing at least one delayed transfer",
            collided,
            1.0,
            0.0,
        ),
        m(
            "contention_flips_policy_ranking",
            "Some burst where link contention inverts a policy preference that held on \
             the ideal network (1 = yes; see storm::ranking_flips)",
            if flips.is_empty() { 0.0 } else { 1.0 },
            1.0,
            0.0,
        ),
        m(
            "peak_contended_transfer_share",
            "Max over contended cells of the fraction of transfers delayed by link \
             contention (the saturation measure)",
            saturation,
            saturation,
            0.20,
        ),
        m(
            "reschedule_delay_amplification",
            "Per-run contention delay of Reschedule over ReReplicate under fair sharing \
             at the largest burst (how much the replanning storm concentrates on the links)",
            amplification,
            amplification,
            0.35,
        ),
    ]
}

// ---------------------------------------------------------------------------
// Entry points

/// Evaluates the `grid` family over an already-run grid — the CLI path,
/// which renders the completion isoclines from the same result instead
/// of sweeping the grid twice.
pub fn validate_grid_result(
    res: &GridResult,
    quick: bool,
    committed: Option<&FamilyValidation>,
) -> FamilyValidation {
    evaluate("grid", quick, measure_grid(res), committed)
}

/// Evaluates one family against a committed record (if any): runs the
/// family's experiment at the quick or full dimensions, measures every
/// claim, and joins targets/tolerances from `committed` (defaults for
/// claims the record does not know).
pub fn validate_family(
    family: &str,
    quick: bool,
    committed: Option<&FamilyValidation>,
) -> FamilyValidation {
    let measurements = match family {
        "grid" => return validate_grid_result(&run_grid(&grid_config(quick)), quick, committed),
        "degradation" => {
            let cfg = degradation_config(quick);
            measure_degradation(&run_degradation(&cfg), &cfg.mttf_factors)
        }
        "transient" => {
            let cfg = transient_config(quick);
            let permanent = degradation_config(quick);
            measure_transient(
                &run_degradation(&cfg),
                &run_degradation(&permanent),
                &cfg.mttf_factors,
            )
        }
        "adaptive" => {
            let cfg = adaptive_config(quick);
            measure_adaptive(&run_degradation(&cfg), &cfg.mttf_factors)
        }
        "network" => measure_network(&run_storm(&storm_config(quick))),
        other => panic!("unknown validation family '{other}' (expected one of {FAMILIES:?})"),
    };
    evaluate(family, quick, measurements, committed)
}

/// The committed records directory: `validation/` at the repo root.
pub fn committed_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../validation")
}

/// The record path of one family under a records directory.
pub fn family_path(dir: &Path, family: &str) -> PathBuf {
    dir.join(format!("VALIDATION_{family}.json"))
}

/// Loads a family record; `None` when the file does not exist.
///
/// # Panics
/// On unreadable or malformed JSON — a committed record that stopped
/// parsing is a failure, not an absence.
pub fn load_family(dir: &Path, family: &str) -> Option<FamilyValidation> {
    let path = family_path(dir, family);
    if !path.exists() {
        return None;
    }
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Some(serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display())))
}

/// Writes a family record (pretty JSON, trailing newline).
pub fn save_family(dir: &Path, record: &FamilyValidation) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut text = serde_json::to_string_pretty(record).expect("records always serialize");
    text.push('\n');
    std::fs::write(family_path(dir, &record.family), text)
}

/// Renders one record as the SNIPPETS-style validation table.
pub fn render(record: &FamilyValidation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "validation — family: {} ({} dimensions)\n",
        record.family,
        if record.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!(
        "  {:<42} {:>10} {:>10} {:>8} {:>6}   {}\n",
        "claim", "target", "predicted", "error", "tol", "status"
    ));
    for c in &record.claims {
        out.push_str(&format!(
            "  {:<42} {:>10.4} {:>10.4} {:>8.4} {:>6.2}   {}\n",
            c.id, c.target, c.predicted, c.error, c.tolerance, c.status
        ));
    }
    let verdict = if record.passed() { "PASSED" } else { "FAILED" };
    out.push_str(&format!(
        "  => {verdict} ({}/{} claims)\n",
        record.claims.iter().filter(|c| c.passed()).count(),
        record.claims.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(claims: Vec<Claim>) -> FamilyValidation {
        FamilyValidation {
            family: "grid".into(),
            quick: true,
            claims,
        }
    }

    fn claim(id: &str, target: f64, predicted: f64, tolerance: f64) -> Claim {
        let error = claim_error(predicted, target);
        Claim {
            id: id.into(),
            description: String::new(),
            target,
            predicted,
            error,
            tolerance,
            status: if error <= tolerance + 1e-12 {
                "PASSED".into()
            } else {
                "FAILED".into()
            },
        }
    }

    #[test]
    fn error_is_relative_with_absolute_fallback() {
        assert!((claim_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((claim_error(0.9, -1.0) - 1.9).abs() < 1e-12);
        // Zero target: absolute error.
        assert!((claim_error(0.25, 0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn evaluate_joins_committed_targets_and_keeps_tolerances() {
        let committed = record(vec![claim("a", 2.0, 2.0, 0.5)]);
        let out = evaluate(
            "grid",
            true,
            vec![m("a", "", 2.9, 99.0, 0.01), m("b", "", 1.0, 1.0, 0.0)],
            Some(&committed),
        );
        // "a" keeps the committed target (2.0) and tolerance (0.5):
        // error 0.45 <= 0.5 passes.
        let a = out.claim("a").unwrap();
        assert_eq!(a.target, 2.0);
        assert_eq!(a.tolerance, 0.5);
        assert!(a.passed());
        // "b" is new: defaults apply.
        let b = out.claim("b").unwrap();
        assert_eq!(b.target, 1.0);
        assert!(b.passed());
        assert!(out.passed());
    }

    #[test]
    fn failing_claim_fails_the_record() {
        let out = evaluate("grid", true, vec![m("a", "", 1.2, 1.0, 0.1)], None);
        assert!(!out.claim("a").unwrap().passed());
        assert!(!out.passed());
        assert!(render(&out).contains("FAILED"));
    }

    #[test]
    fn non_finite_predictions_fail_with_diagnostic() {
        // The empty-histogram case: `Histogram::fraction_le` (and the
        // mean-slowdown path) return NaN when no run was recorded; a NaN
        // prediction must read FAILED no matter the comparison direction.
        let h = ft_runtime::Histogram::new(vec![1.0, 2.0]);
        let nan = h.fraction_le(2.0);
        assert!(nan.is_nan());
        let out = evaluate(
            "grid",
            true,
            vec![
                m("empty-hist", "", nan, 1.0, 1e9), // any tolerance: still FAILED
                m("inf", "", f64::INFINITY, 1.0, 0.5),
                m("ok", "", 1.0, 1.0, 0.0),
            ],
            None,
        );
        let bad = out.claim("empty-hist").unwrap();
        assert_eq!(bad.status, "FAILED (non-finite)");
        assert!(!bad.passed());
        assert_eq!(out.claim("inf").unwrap().status, "FAILED (non-finite)");
        assert!(out.claim("ok").unwrap().passed());
        assert!(!out.passed());
        assert!(render(&out).contains("FAILED (non-finite)"));
    }

    #[test]
    fn non_finite_committed_target_also_fails() {
        // A poisoned committed record (NaN target) makes `error` NaN even
        // for a finite prediction — that must fail too, not pass.
        let committed = record(vec![claim("a", f64::NAN, 1.0, 0.5)]);
        let out = evaluate(
            "grid",
            true,
            vec![m("a", "", 1.0, 1.0, 0.5)],
            Some(&committed),
        );
        assert_eq!(out.claim("a").unwrap().status, "FAILED (non-finite)");
        assert!(!out.passed());
    }

    #[test]
    fn bless_re_targets_but_keeps_tolerances() {
        let failed = evaluate("grid", true, vec![m("a", "", 1.2, 1.0, 0.1)], None);
        let blessed = bless(failed);
        let a = blessed.claim("a").unwrap();
        assert_eq!(a.target, 1.2);
        assert_eq!(a.tolerance, 0.1);
        assert!(blessed.passed());
    }

    #[test]
    fn upper_bound_derives_from_target_and_tolerance() {
        let rec = record(vec![claim("a", 2.0, 2.0, 0.1)]);
        assert!((rec.upper_bound("a").unwrap() - 2.2).abs() < 1e-12);
        assert!(rec.upper_bound("missing").is_none());
    }

    #[test]
    fn records_round_trip_through_json() {
        let rec = record(vec![claim("a", 1.0, 1.05, 0.1), claim("b", 0.0, 0.0, 0.0)]);
        let text = serde_json::to_string_pretty(&rec).unwrap();
        let back: FamilyValidation = serde_json::from_str(&text).unwrap();
        assert_eq!(
            serde_json::to_string(&rec).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert_eq!(back.claims.len(), 2);
        assert!(back.claim("a").unwrap().passed());
    }

    #[test]
    fn family_configs_reduce_under_quick() {
        assert!(grid_config(true).graphs_per_point < grid_config(false).graphs_per_point);
        assert!(degradation_config(true).runs < degradation_config(false).runs);
        assert_eq!(transient_config(true).mttr_factor, Some(0.25));
        assert_eq!(adaptive_config(true).checkpoint_overhead, 0.1);
        assert!(adaptive_config(true).mttf_factors.contains(&4.0));
        assert!(storm_config(true).runs < storm_config(false).runs);
        // The quick lane must re-measure the same flip cell as the full
        // lane: only the run count thins.
        assert_eq!(
            storm_config(true).burst_sizes,
            storm_config(false).burst_sizes
        );
    }
}
