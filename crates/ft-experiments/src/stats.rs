//! Small streaming statistics.

use serde::{Deserialize, Serialize};

/// Streaming mean / min / max / standard deviation (Welford).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Accumulator {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_extremes() {
        let mut a = Accumulator::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn std_dev_matches_textbook() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.push(x);
        }
        // Sample std dev of this classic dataset is ~2.138.
        assert!((a.std_dev() - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.std_dev(), 0.0);
        assert!(a.min().is_nan());
    }
}
