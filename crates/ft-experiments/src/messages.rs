//! The message-count experiment behind Proposition 5.1 and the §6
//! discussion of the replication communication blow-up.
//!
//! For several graph families and values of ε, measures the total message
//! count of CAFT, FTSA and FTBAR against the analytical marks `e`,
//! `e(ε+1)` and `e(ε+1)²`.

use ft_algos::{caft, ftbar, ftsa, CommModel};
use ft_graph::gen::{random_layered, random_outforest, RandomDagParams};
use ft_graph::TaskGraph;
use ft_platform::{random_instance, PlatformParams};
use ft_sim::message_stats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One row of the message experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MessageRow {
    /// Graph family name.
    pub family: String,
    /// Failures supported.
    pub eps: usize,
    /// Mean edge count `e`.
    pub edges: f64,
    /// Mean total messages per algorithm.
    pub caft: f64,
    /// FTSA mean total messages.
    pub ftsa: f64,
    /// FTBAR mean total messages.
    pub ftbar: f64,
    /// Mean linear mark `e(ε+1)`.
    pub linear_bound: f64,
    /// Mean quadratic mark `e(ε+1)²`.
    pub quadratic_bound: f64,
}

/// Runs the experiment: `graphs` random graphs per (family, ε) cell.
pub fn run_messages(graphs: usize, seed: u64) -> Vec<MessageRow> {
    type FamilyGen = Box<dyn Fn(&mut StdRng) -> TaskGraph>;
    let families: Vec<(&str, FamilyGen)> = vec![
        (
            "layered",
            Box::new(|rng: &mut StdRng| random_layered(&RandomDagParams::default(), rng)),
        ),
        (
            "outforest",
            Box::new(|rng: &mut StdRng| {
                random_outforest(100, 0.05, 10.0..=100.0, 50.0..=150.0, rng)
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, gen) in &families {
        for eps in [1usize, 3, 5] {
            let m = if eps >= 5 { 20 } else { 10 };
            let mut acc = [0.0f64; 6]; // e, caft, ftsa, ftbar, lin, quad
            for gi in 0..graphs {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(gi as u64 * 7919));
                let g = gen(&mut rng);
                let inst =
                    random_instance(g, &PlatformParams::default().with_procs(m), 1.0, &mut rng);
                let model = CommModel::OnePort;
                let sc = message_stats(&inst, &caft(&inst, eps, model, seed));
                let sf = message_stats(&inst, &ftsa(&inst, eps, model, seed));
                let sb = message_stats(&inst, &ftbar(&inst, eps, model, seed));
                acc[0] += sc.edges as f64;
                acc[1] += sc.total() as f64;
                acc[2] += sf.total() as f64;
                acc[3] += sb.total() as f64;
                acc[4] += sc.linear_bound as f64;
                acc[5] += sc.quadratic_bound as f64;
            }
            let n = graphs as f64;
            rows.push(MessageRow {
                family: name.to_string(),
                eps,
                edges: acc[0] / n,
                caft: acc[1] / n,
                ftsa: acc[2] / n,
                ftbar: acc[3] / n,
                linear_bound: acc[4] / n,
                quadratic_bound: acc[5] / n,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outforest_rows_respect_proposition_5_1() {
        let rows = run_messages(2, 1);
        for r in rows.iter().filter(|r| r.family == "outforest") {
            assert!(
                r.caft <= r.linear_bound + 1e-9,
                "eps {}: CAFT {} > e(ε+1) {}",
                r.eps,
                r.caft,
                r.linear_bound
            );
        }
    }

    #[test]
    fn caft_below_ftsa_below_quadratic() {
        let rows = run_messages(2, 2);
        for r in &rows {
            assert!(
                r.caft <= r.ftsa + 1e-9,
                "{}/{}: {} > {}",
                r.family,
                r.eps,
                r.caft,
                r.ftsa
            );
            assert!(r.ftsa <= r.quadratic_bound + 1e-9);
        }
    }
}
