//! Experiment configurations matching §6.

use serde::{Deserialize, Serialize};

/// Configuration of one figure sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureConfig {
    /// Figure identifier (`"fig1"` … `"fig6"`).
    pub id: String,
    /// Granularity sweep values.
    pub granularities: Vec<f64>,
    /// Number of processors `m`.
    pub procs: usize,
    /// Supported failures ε.
    pub eps: usize,
    /// Processors killed in the crash experiment (panel (b)/(c)).
    pub crashes: usize,
    /// Random graphs averaged per data point (the paper uses 60).
    pub graphs_per_point: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// Type A sweep: granularity 0.2 ..= 2.0, step 0.2 (Figures 1–3).
pub fn sweep_a() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.2).collect()
}

/// Type B sweep: granularity 1 ..= 10, step 1 (Figures 4–6).
pub fn sweep_b() -> Vec<f64> {
    (1..=10).map(|i| i as f64).collect()
}

impl FigureConfig {
    /// Generic constructor.
    pub fn new(
        id: &str,
        granularities: Vec<f64>,
        procs: usize,
        eps: usize,
        crashes: usize,
    ) -> Self {
        FigureConfig {
            id: id.to_string(),
            granularities,
            procs,
            eps,
            crashes,
            graphs_per_point: 60,
            seed: 0x5EED,
        }
    }

    /// Reduces the workload for tests and smoke runs: `n` graphs per point
    /// and every other sweep value.
    pub fn quick(mut self, n: usize) -> Self {
        self.graphs_per_point = n;
        self.granularities = self.granularities.into_iter().step_by(2).collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper() {
        let a = sweep_a();
        assert_eq!(a.len(), 10);
        assert!((a[0] - 0.2).abs() < 1e-12);
        assert!((a[9] - 2.0).abs() < 1e-12);
        let b = sweep_b();
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn quick_mode_thins_the_sweep() {
        let cfg = FigureConfig::new("fig1", sweep_a(), 10, 1, 1).quick(5);
        assert_eq!(cfg.graphs_per_point, 5);
        assert_eq!(cfg.granularities.len(), 5);
    }
}
