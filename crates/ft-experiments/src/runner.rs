//! The experiment executor: one call = one figure of the paper.

use crate::config::FigureConfig;
use crate::stats::Accumulator;
use ft_algos::{caft, ftbar, ftsa, heft, CommModel};
use ft_graph::gen::{random_layered, RandomDagParams};
use ft_platform::{random_instance, Instance, PlatformParams};
use ft_sim::{latency_bounds, replay, replay_with, FaultScenario, ReplayConfig, ReplayPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-algorithm aggregates at one granularity (means over the graphs).
/// All latencies are normalized by the instance's mean task cost.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AlgoPoint {
    /// Latency with 0 crash (nominal).
    pub zero_crash: f64,
    /// Latency upper bound (last-copy propagation).
    pub upper: f64,
    /// Latency with the configured number of crashes (fail-over replay).
    pub crash: f64,
    /// Overhead (%) of the 0-crash latency over fault-free CAFT.
    pub overhead_zero: f64,
    /// Overhead (%) of the crash latency over fault-free CAFT.
    pub overhead_crash: f64,
    /// Mean inter-processor message count.
    pub remote_msgs: f64,
}

/// All series at one granularity.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PointResult {
    /// The sweep value (realized granularity).
    pub granularity: f64,
    /// Normalized latency of fault-free CAFT (= HEFT), the paper's `CAFT*`.
    pub fault_free_caft: f64,
    /// Normalized latency of fault-free FTBAR.
    pub fault_free_ftbar: f64,
    /// CAFT series.
    pub caft: AlgoPoint,
    /// FTSA series.
    pub ftsa: AlgoPoint,
    /// FTBAR series.
    pub ftbar: AlgoPoint,
    /// Fraction of crash patterns the CAFT schedule survives *without*
    /// runtime fail-over (strict replay) — the Proposition 5.2 gap.
    pub caft_strict_completion: f64,
}

/// The full sweep of one figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureResult {
    /// The configuration that produced this result.
    pub config: FigureConfig,
    /// One entry per granularity.
    pub points: Vec<PointResult>,
}

struct AlgoAcc {
    zero: Accumulator,
    upper: Accumulator,
    crash: Accumulator,
    ov_zero: Accumulator,
    ov_crash: Accumulator,
    msgs: Accumulator,
}

impl AlgoAcc {
    fn new() -> Self {
        AlgoAcc {
            zero: Accumulator::new(),
            upper: Accumulator::new(),
            crash: Accumulator::new(),
            ov_zero: Accumulator::new(),
            ov_crash: Accumulator::new(),
            msgs: Accumulator::new(),
        }
    }

    fn finish(&self) -> AlgoPoint {
        AlgoPoint {
            zero_crash: self.zero.mean(),
            upper: self.upper.mean(),
            crash: self.crash.mean(),
            overhead_zero: self.ov_zero.mean(),
            overhead_crash: self.ov_crash.mean(),
            remote_msgs: self.msgs.mean(),
        }
    }
}

/// Deterministic per-(point, graph) seed derivation.
pub(crate) fn derive_seed(base: u64, point: usize, graph: usize) -> u64 {
    let mut x = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point as u64) << 32)
        .wrapping_add(graph as u64 + 1);
    // splitmix64 finalizer
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draws one §6 instance on an `m`-processor platform at the given
/// granularity (the ε-independent half of a sweep cell — the grid runner
/// shares one draw across every ε evaluated on it).
pub fn draw_instance_on(procs: usize, gran: f64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = random_layered(&RandomDagParams::default(), &mut rng);
    let params = PlatformParams::default().with_procs(procs);
    random_instance(graph, &params, gran, &mut rng)
}

/// Draws one §6 instance at the given granularity.
pub fn draw_instance(cfg: &FigureConfig, gran: f64, seed: u64) -> Instance {
    draw_instance_on(cfg.procs, gran, seed)
}

/// The ε-independent setup of one graph draw: the instance plus the
/// fault-free baselines (`CAFT* = HEFT` anchoring the overheads, and the
/// fault-free FTBAR), computed once and shared by every ε-cell evaluated
/// on the draw.
pub(crate) struct SharedDraw {
    pub inst: Instance,
    pub seed: u64,
    /// Fault-free CAFT (= HEFT) latency, unnormalized.
    pub ff_caft: f64,
    /// Fault-free FTBAR latency, unnormalized.
    pub ff_ftbar: f64,
}

impl SharedDraw {
    pub fn new(procs: usize, gran: f64, seed: u64) -> Self {
        let inst = draw_instance_on(procs, gran, seed);
        let ff_caft = heft(&inst, CommModel::OnePort, seed).latency();
        let ff_ftbar = ftbar(&inst, 0, CommModel::OnePort, seed).latency();
        SharedDraw {
            inst,
            seed,
            ff_caft,
            ff_ftbar,
        }
    }
}

/// Accumulates every series of one sweep point (one granularity at one
/// (m, ε) setting) across graph draws; [`PointAcc::finish`] yields the
/// [`PointResult`] means.
pub(crate) struct PointAcc {
    ff_caft: Accumulator,
    ff_ftbar: Accumulator,
    caft: AlgoAcc,
    ftsa: AlgoAcc,
    ftbar: AlgoAcc,
    strict_ok: Accumulator,
}

impl PointAcc {
    pub fn new() -> Self {
        PointAcc {
            ff_caft: Accumulator::new(),
            ff_ftbar: Accumulator::new(),
            caft: AlgoAcc::new(),
            ftsa: AlgoAcc::new(),
            ftbar: AlgoAcc::new(),
            strict_ok: Accumulator::new(),
        }
    }

    /// Evaluates one ε-cell on a shared draw: schedules the three
    /// algorithms, replays the crash pattern, records every series.
    pub fn record(&mut self, draw: &SharedDraw, eps: usize, crashes: usize) {
        let model = CommModel::OnePort;
        let inst = &draw.inst;
        let seed = draw.seed;
        let norm = inst.mean_task_cost();
        self.ff_caft.push(draw.ff_caft / norm);
        self.ff_ftbar.push(draw.ff_ftbar / norm);

        // One crash pattern shared by the three algorithms.
        let mut crash_rng = StdRng::seed_from_u64(seed ^ 0xC4A5);
        let scenario = FaultScenario::random(inst.num_procs(), crashes, &mut crash_rng);

        let overhead = |lat: f64| (lat - draw.ff_caft) / draw.ff_caft * 100.0;
        let run = |sched: ft_model::FtSchedule, acc: &mut AlgoAcc| {
            let b = latency_bounds(inst, &sched);
            let crash_out = replay_with(
                inst,
                &sched,
                &scenario,
                ReplayConfig {
                    policy: ReplayPolicy::FirstCopy,
                    reroute: true,
                },
            );
            let crash_lat = crash_out
                .latency()
                .expect("fail-over replay always completes with ≤ ε crashes");
            acc.zero.push(b.zero_crash / norm);
            acc.upper.push(b.upper / norm);
            acc.crash.push(crash_lat / norm);
            acc.ov_zero.push(overhead(b.zero_crash));
            acc.ov_crash.push(overhead(crash_lat));
            acc.msgs.push(sched.num_remote_messages() as f64);
            sched
        };

        let caft_sched = run(caft(inst, eps, model, seed), &mut self.caft);
        run(ftsa(inst, eps, model, seed), &mut self.ftsa);
        run(ftbar(inst, eps, model, seed), &mut self.ftbar);

        // Strict-replay completion of CAFT under the same pattern.
        let strict = replay(inst, &caft_sched, &scenario);
        self.strict_ok
            .push(if strict.completed() { 1.0 } else { 0.0 });
    }

    pub fn finish(&self, gran: f64) -> PointResult {
        PointResult {
            granularity: gran,
            fault_free_caft: self.ff_caft.mean(),
            fault_free_ftbar: self.ff_ftbar.mean(),
            caft: self.caft.finish(),
            ftsa: self.ftsa.finish(),
            ftbar: self.ftbar.finish(),
            caft_strict_completion: self.strict_ok.mean(),
        }
    }
}

/// Runs every series of one figure.
pub fn run_figure(cfg: &FigureConfig) -> FigureResult {
    let mut points = Vec::with_capacity(cfg.granularities.len());
    for (pi, &gran) in cfg.granularities.iter().enumerate() {
        let mut acc = PointAcc::new();
        for gi in 0..cfg.graphs_per_point {
            let seed = derive_seed(cfg.seed, pi, gi);
            let draw = SharedDraw::new(cfg.procs, gran, seed);
            acc.record(&draw, cfg.eps, cfg.crashes);
        }
        points.push(acc.finish(gran));
    }
    FigureResult {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{sweep_a, FigureConfig};

    fn tiny_cfg() -> FigureConfig {
        let mut cfg = FigureConfig::new("fig1", sweep_a(), 10, 1, 1).quick(2);
        cfg.granularities = vec![0.4, 2.0];
        cfg
    }

    #[test]
    fn figure_run_produces_all_series() {
        let res = run_figure(&tiny_cfg());
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            assert!(p.fault_free_caft > 0.0);
            assert!(p.caft.zero_crash >= p.fault_free_caft * 0.5);
            assert!(p.caft.upper >= p.caft.zero_crash - 1e-9);
            assert!(p.ftsa.upper >= p.ftsa.zero_crash - 1e-9);
            assert!(p.caft.crash > 0.0);
            assert!(p.caft.remote_msgs > 0.0);
            assert!((0.0..=1.0).contains(&p.caft_strict_completion));
        }
    }

    #[test]
    fn caft_beats_ftsa_on_messages() {
        let res = run_figure(&tiny_cfg());
        for p in &res.points {
            assert!(
                p.caft.remote_msgs < p.ftsa.remote_msgs,
                "g {}: CAFT {} vs FTSA {}",
                p.granularity,
                p.caft.remote_msgs,
                p.ftsa.remote_msgs
            );
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_figure(&tiny_cfg());
        let b = run_figure(&tiny_cfg());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.caft.zero_crash, y.caft.zero_crash);
            assert_eq!(x.ftbar.crash, y.ftbar.crash);
        }
    }
}
