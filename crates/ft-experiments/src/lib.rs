//! # ft-experiments — regenerating the paper's evaluation
//!
//! §6 of the paper evaluates CAFT against (one-port adaptations of) FTSA
//! and FTBAR on random graphs: 60 graphs per data point, tasks uniform in
//! `[80, 120]`, per-task degree in `[1, 3]`, unit link delays in
//! `[0.5, 1]`, message volumes in `[50, 150]`, granularity swept either
//! over `[0.2, 2.0]` (type A) or `[1, 10]` (type B). Three platform
//! settings: `m = 10, ε = 1`, `m = 10, ε = 3`, `m = 20, ε = 5`; crash
//! experiments kill 1, 2 and 3 processors respectively.
//!
//! Each figure has three panels:
//! * **(a)** normalized latency of the fault-free schedules, the
//!   fault-tolerant schedules with 0 crash, and their upper bounds;
//! * **(b)** normalized latency with 0 crash vs. with crashes;
//! * **(c)** average fault-tolerance overhead (%), using the paper's
//!   formula `(L_x − CAFT*) / CAFT*` where `CAFT*` is the fault-free CAFT
//!   (= HEFT) latency.
//!
//! [`run_figure`] computes every series of one figure;
//! [`figures::figure_configs`] lists the six paper configurations;
//! [`grid::run_grid`] sweeps the whole cross product in one call with
//! the ε-independent setup shared per platform size, and
//! [`validate`] evaluates the committed per-family claim records
//! (`validation/VALIDATION_*.json`) over it — the CI science gate. Three
//! additional experiments go beyond the figures:
//! [`messages::run_messages`] (Proposition 5.1 message counts),
//! [`resilience_exp::run_resilience`] (Proposition 5.2, strict vs fail-over
//! replay), and [`degradation::run_degradation`] (the online-runtime
//! degradation-vs-failure-rate sweep over `ft-runtime`'s recovery
//! policies).
//!
//! Everything is deterministic: each data point derives its RNG seed from
//! `(figure seed, point index, graph index)`.

#![warn(missing_docs)]

pub mod config;
pub mod degradation;
pub mod figures;
pub mod grid;
pub mod messages;
pub mod resilience_exp;
pub mod runner;
pub mod stats;
pub mod storm;
pub mod sweep;
pub mod table;
pub mod validate;

pub use config::FigureConfig;
pub use degradation::{
    render_degradation, run_degradation, DegradationConfig, DegradationRow, DetectionKind,
};
pub use grid::{render_isoclines, run_grid, GridConfig, GridResult, PlatformSetting};
pub use runner::{run_figure, FigureResult, PointResult};
pub use stats::Accumulator;
pub use storm::{ranking_flips, render_storm, run_storm, StormConfig, StormRow};
pub use sweep::{CellSpec, SweepGrid, WorkloadSpec};
pub use validate::{validate_family, Claim, FamilyValidation, FAMILIES};
