//! Job-facing sweep types: a serializable workload + scenario grid that
//! resolves into independently executable Monte-Carlo cells.
//!
//! The degradation experiment ([`run_degradation`](crate::run_degradation))
//! historically fused three concerns in one loop: *building* the workload
//! (graph → instance → CAFT schedule), *enumerating* the (policy × MTTF ×
//! MTTR × detection) cross product, and *executing* each cell's batch.
//! This module factors the first two out into plain serde data so that a
//! long-running service (`ft-serve`) can ship them in a job file, cache
//! the built artifacts across jobs, and execute cells incrementally:
//!
//! * [`WorkloadSpec`] — the workload recipe: [`build`](WorkloadSpec::build)
//!   reproduces the degradation sweep's exact RNG order (one `StdRng`
//!   seeded from `seed` drives the graph draw then the instance draw; the
//!   CAFT schedule reuses `seed`), so a spec extracted from a
//!   [`DegradationConfig`](crate::degradation::DegradationConfig)
//!   rebuilds byte-identical artifacts;
//! * [`SweepGrid`] — the scenario axes: [`cells`](SweepGrid::cells)
//!   enumerates the cross product in the degradation sweep's presentation
//!   order (MTTF outer, then MTTR, then detection, then the policy
//!   roster), each as a self-contained [`CellSpec`];
//! * [`CellSpec`] — one (policy, MTTF, MTTR, detection) cell:
//!   [`monte_carlo_config`](CellSpec::monte_carlo_config) resolves it
//!   against built artifacts into the exact [`MonteCarloConfig`] the
//!   [`Simulation`](ft_runtime::Simulation) front door would run, so
//!   [`run`](CellSpec::run) — or a chunked
//!   [`ChunkedBatch`](ft_runtime::ChunkedBatch) execution of the same
//!   config — is byte-identical to the historical sweep (pinned by the
//!   degradation golden tests and the `sweep_factors_the_degradation_loop`
//!   test below).

use ft_algos::{caft, CommModel};
use ft_graph::gen::{random_layered, RandomDagParams};
use ft_model::FtSchedule;
use ft_platform::{random_instance, Instance, PlatformParams};
use ft_runtime::{
    simulate_many, BatchSummary, Contention, EngineConfig, FailureKind, LifetimeDist,
    MonteCarloConfig, RecoveryPolicy, RepairModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::degradation::DetectionKind;

/// The workload recipe of a sweep: everything needed to rebuild the
/// (instance, schedule) pair deterministically. Two specs with equal
/// fields build byte-identical artifacts — the property `ft-serve`'s
/// artifact cache keys on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Tasks in the random layered DAG.
    pub tasks: usize,
    /// Processors `m` of the platform.
    pub procs: usize,
    /// Supported failures ε of the static CAFT schedule.
    pub eps: usize,
    /// Granularity of the instance (computation/communication ratio).
    pub granularity: f64,
    /// Seed of the graph + instance draws and of the CAFT tie-breaks.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Builds the workload: graph and instance drawn from one `StdRng`
    /// seeded with `seed` (graph first — the same RNG order as the
    /// degradation sweep), then the ε-resilient CAFT schedule under the
    /// one-port model.
    pub fn build(&self) -> (Instance, FtSchedule) {
        let inst = self.build_instance();
        let sched = self.schedule(&inst);
        (inst, sched)
    }

    /// The instance half of [`build`](WorkloadSpec::build): graph +
    /// platform, independent of `eps` — the coarser of the two artifact
    /// levels a cache can share (every ε variant of a workload reuses
    /// it).
    pub fn build_instance(&self) -> Instance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let graph = random_layered(&RandomDagParams::default().with_tasks(self.tasks), &mut rng);
        random_instance(
            graph,
            &PlatformParams::default().with_procs(self.procs),
            self.granularity,
            &mut rng,
        )
    }

    /// The schedule half of [`build`](WorkloadSpec::build): the
    /// ε-resilient CAFT schedule of an instance built by
    /// [`build_instance`](WorkloadSpec::build_instance).
    pub fn schedule(&self, inst: &Instance) -> FtSchedule {
        caft(inst, self.eps, CommModel::OnePort, self.seed)
    }
}

/// The scenario axes of a sweep: the (MTTF × MTTR × detection × policy)
/// cross product, plus the run count and seeds shared by every cell.
/// [`cells`](SweepGrid::cells) resolves it into executable [`CellSpec`]s.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepGrid {
    /// MTTF axis, as multiples of the schedule's nominal latency
    /// (descending = increasing failure pressure).
    pub mttf_factors: Vec<f64>,
    /// MTTR axis: `None` = permanent fail-stop, `Some(f)` = transient
    /// failures with exponential repairs of mean `f × nominal`.
    pub mttr_factors: Vec<Option<f64>>,
    /// Detection-model axis.
    pub detections: Vec<DetectionKind>,
    /// Fixed checkpoint intervals of the policy roster, as multiples of
    /// the instance's mean task cost (one `Checkpoint` policy per entry).
    pub checkpoint_intervals: Vec<f64>,
    /// Per-checkpoint overhead, as a multiple of the mean task cost.
    pub checkpoint_overhead: f64,
    /// Restrict the roster to the policy with this
    /// [`name`](RecoveryPolicy::name); `None` runs the full roster.
    pub only_policy: Option<String>,
    /// Monte-Carlo runs per cell.
    pub runs: usize,
    /// Detection latency (the scale knob of every [`DetectionKind`]).
    pub detection_latency: f64,
    /// Base seed: each cell's simulation seed is `seed ^
    /// mttf_factor.to_bits()` (every policy at a rate sees the same fault
    /// draws), and gossip detection is seeded with `seed` itself.
    pub seed: u64,
    /// Link-contention model every cell's transfers are charged under.
    /// [`Contention::Ideal`] (the default) is the historical
    /// contention-free engine; job files without the field deserialize
    /// to `Ideal`.
    pub contention: Contention,
}

impl Default for SweepGrid {
    fn default() -> Self {
        let d = crate::degradation::DegradationConfig::default();
        d.grid()
    }
}

impl SweepGrid {
    /// The policy roster of one cell at failure rate `mttf` (absolute
    /// time units), in presentation order: the [`RecoveryPolicy::ALL`]
    /// registry, one `Checkpoint` per configured interval, then one
    /// `AdaptiveCheckpoint` tuned to the cell's MTTF — filtered down when
    /// `only_policy` is set.
    pub fn roster(&self, mean_task_cost: f64, mttf: f64) -> Vec<RecoveryPolicy> {
        let mut all: Vec<RecoveryPolicy> = RecoveryPolicy::ALL.to_vec();
        for &iv in &self.checkpoint_intervals {
            all.push(RecoveryPolicy::checkpoint(
                iv * mean_task_cost,
                self.checkpoint_overhead * mean_task_cost,
            ));
        }
        all.push(RecoveryPolicy::adaptive_checkpoint(
            mttf,
            self.checkpoint_overhead * mean_task_cost,
        ));
        if let Some(name) = &self.only_policy {
            all.retain(|p| p.name() == name.as_str());
        }
        all
    }

    /// Resolves the grid into executable cells against a schedule of the
    /// given `nominal` latency on an instance of the given mean task
    /// cost, in the degradation sweep's order: MTTF outer, then MTTR,
    /// then detection, then the per-rate policy roster.
    pub fn cells(&self, mean_task_cost: f64, nominal: f64) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for &mttf_factor in &self.mttf_factors {
            let roster = self.roster(mean_task_cost, nominal * mttf_factor);
            for &mttr_factor in &self.mttr_factors {
                for &detection in &self.detections {
                    for &policy in &roster {
                        cells.push(CellSpec {
                            policy,
                            mttf_factor,
                            mttr_factor,
                            detection,
                            detection_latency: self.detection_latency,
                            detection_seed: self.seed,
                            runs: self.runs,
                            seed: self.seed ^ mttf_factor.to_bits(),
                            contention: self.contention,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One fully-resolved sweep cell: a recovery policy under one (MTTF,
/// MTTR, detection) scenario. Self-contained and serializable — a cell
/// plus built workload artifacts determines its batch completely.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellSpec {
    /// The recovery policy of the cell (checkpoint intervals already in
    /// absolute time units — scaled by the roster, not here).
    pub policy: RecoveryPolicy,
    /// MTTF as a multiple of the schedule's nominal latency.
    pub mttf_factor: f64,
    /// `None` = permanent fail-stop; `Some(f)` = transient failures with
    /// exponential repairs of mean `f × nominal`.
    pub mttr_factor: Option<f64>,
    /// Detection-model selector.
    pub detection: DetectionKind,
    /// Detection latency the selector is scaled by.
    pub detection_latency: f64,
    /// Seed of the gossip detection rounds (the sweep's base seed — all
    /// cells share one gossip schedule, like the historical sweep).
    pub detection_seed: u64,
    /// Monte-Carlo runs of the cell.
    pub runs: usize,
    /// Simulation seed (scenario stream + engine streams).
    pub seed: u64,
    /// Link-contention model the cell's transfers are charged under
    /// (defaults to [`Contention::Ideal`] in legacy cell records).
    pub contention: Contention,
}

impl CellSpec {
    /// The cell's failure kind for a schedule of the given nominal
    /// latency (see
    /// [`DegradationConfig::failure_kind`](crate::DegradationConfig::failure_kind)
    /// for the transient-horizon convention this mirrors).
    pub fn failure_kind(&self, nominal: f64) -> FailureKind {
        match self.mttr_factor {
            None => FailureKind::Permanent,
            Some(f) => FailureKind::transient(
                RepairModel::Exponential { mean: f * nominal },
                4.0 * nominal,
            ),
        }
    }

    /// Resolves the cell against built artifacts into the exact
    /// [`MonteCarloConfig`] the [`Simulation`](ft_runtime::Simulation)
    /// front door would execute: same lifetime, failure kind, engine
    /// config and seed — so running it through [`simulate_many`] (or
    /// chunked via [`ChunkedBatch`](ft_runtime::ChunkedBatch)) is
    /// byte-identical to the historical degradation loop.
    pub fn monte_carlo_config(&self, inst: &Instance, sched: &FtSchedule) -> MonteCarloConfig {
        let nominal = sched.latency();
        MonteCarloConfig {
            runs: self.runs,
            lifetime: LifetimeDist::Exponential {
                mean: nominal * self.mttf_factor,
            },
            failure: self.failure_kind(nominal),
            engine: EngineConfig {
                policy: self.policy,
                detection: self.detection.model(
                    inst.num_procs(),
                    self.detection_latency,
                    self.detection_seed,
                ),
                seed: self.seed,
                contention: self.contention,
            },
            seed: self.seed,
        }
    }

    /// Runs the cell's Monte-Carlo batch to completion.
    pub fn run(&self, inst: &Instance, sched: &FtSchedule) -> BatchSummary {
        simulate_many(inst, sched, &self.monte_carlo_config(inst, sched))
    }

    /// A human-readable cell key for result records, e.g.
    /// `mttf4x/permanent/uniform/re-replicate`.
    pub fn label(&self) -> String {
        let failures = match self.mttr_factor {
            None => "permanent".to_string(),
            Some(f) => format!("mttr{f}x"),
        };
        format!(
            "mttf{}x/{failures}/{}/{}",
            self.mttf_factor,
            self.detection.name(),
            self.policy.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degradation::{run_degradation, DegradationConfig};
    use ft_runtime::ChunkedBatch;

    fn quick() -> DegradationConfig {
        DegradationConfig {
            tasks: 25,
            procs: 6,
            runs: 40,
            mttf_factors: vec![8.0, 2.0],
            ..Default::default()
        }
    }

    #[test]
    fn workload_build_is_deterministic() {
        let cfg = quick();
        let spec = cfg.workload();
        let (i1, s1) = spec.build();
        let (i2, s2) = spec.build();
        assert_eq!(i1.num_procs(), cfg.procs);
        assert_eq!(i1.mean_task_cost().to_bits(), i2.mean_task_cost().to_bits());
        assert_eq!(s1.latency().to_bits(), s2.latency().to_bits());
    }

    #[test]
    fn sweep_factors_the_degradation_loop() {
        // The factored path — workload().build() + grid().cells() +
        // CellSpec::run — must reproduce run_degradation byte-for-byte:
        // the grid/cell types add zero science.
        let cfg = quick();
        let rows = run_degradation(&cfg);
        let (inst, sched) = cfg.workload().build();
        let cells = cfg.grid().cells(inst.mean_task_cost(), sched.latency());
        assert_eq!(cells.len(), rows.len());
        for (cell, row) in cells.iter().zip(&rows) {
            assert_eq!(cell.mttf_factor, row.mttf_factor);
            assert_eq!(
                serde_json::to_string(&cell.run(&inst, &sched)).unwrap(),
                serde_json::to_string(&row.summary).unwrap(),
                "cell {} diverged from the degradation loop",
                cell.label()
            );
        }
    }

    #[test]
    fn chunked_cell_execution_is_byte_identical() {
        // The service execution path: a cell resolved to a
        // MonteCarloConfig and run through ChunkedBatch in small chunks
        // must equal the direct batch — determinism survives chunking.
        let cfg = quick();
        let (inst, sched) = cfg.workload().build();
        let cell = &cfg.grid().cells(inst.mean_task_cost(), sched.latency())[1];
        let mc = cell.monte_carlo_config(&inst, &sched);
        let mut chunked = ChunkedBatch::new(&inst, &sched, &mc, &mc.engine.policy);
        while chunked.run_chunk(7) > 0 {}
        assert_eq!(
            serde_json::to_string(&chunked.finish()).unwrap(),
            serde_json::to_string(&cell.run(&inst, &sched)).unwrap()
        );
    }

    #[test]
    fn grid_cross_product_covers_every_axis_combination() {
        let grid = SweepGrid {
            mttf_factors: vec![8.0, 2.0],
            mttr_factors: vec![None, Some(0.25)],
            detections: vec![DetectionKind::Uniform, DetectionKind::Gossip],
            only_policy: Some("absorb".into()),
            runs: 10,
            ..SweepGrid::default()
        };
        let cells = grid.cells(1.0, 10.0);
        assert_eq!(cells.len(), 2 * 2 * 2, "one absorb cell per combination");
        let labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), {
            let mut u = labels.clone();
            u.sort();
            u.dedup();
            u.len()
        });
        // MTTF outer: the first half of the cells is the first factor.
        assert!(cells[..4].iter().all(|c| c.mttf_factor == 8.0));
        // Same fault stream for every cell at a rate.
        assert!(cells[..4]
            .iter()
            .all(|c| c.seed == grid.seed ^ 8.0f64.to_bits()));
    }

    #[test]
    fn cell_specs_round_trip_through_serde() {
        let grid = quick().grid();
        let cells = grid.cells(1.0, 10.0);
        let json = serde_json::to_string(&cells).unwrap();
        let back: Vec<CellSpec> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), cells.len());
        for (a, b) in cells.iter().zip(&back) {
            assert_eq!(a.label(), b.label());
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.runs, b.runs);
        }
        let gjson = serde_json::to_string(&grid).unwrap();
        let gback: SweepGrid = serde_json::from_str(&gjson).unwrap();
        assert_eq!(gback.cells(1.0, 10.0).len(), cells.len());
    }
}
