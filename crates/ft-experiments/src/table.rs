//! Plain-text rendering of experiment results, one table per figure panel.

use crate::messages::MessageRow;
use crate::resilience_exp::ResilienceRow;
use crate::runner::FigureResult;
use std::fmt::Write as _;

fn row(out: &mut String, cells: &[String], widths: &[usize]) {
    for (c, w) in cells.iter().zip(widths) {
        let _ = write!(out, "{c:>w$}  ", w = w);
    }
    out.push('\n');
}

fn fmt(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders the three panels of a figure as text tables.
pub fn render_figure(res: &FigureResult) -> String {
    let c = &res.config;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} — m = {}, ε = {}, {} crash(es), {} graphs/point ==",
        c.id, c.procs, c.eps, c.crashes, c.graphs_per_point
    );

    // Panel (a): bounds.
    let hdr_a = [
        "g", "FF-CAFT", "FF-FTBAR", "CAFT0", "CAFT-UB", "FTSA0", "FTSA-UB", "FTBAR0", "FTBAR-UB",
    ];
    let w: Vec<usize> = hdr_a.iter().map(|h| h.len().max(8)).collect();
    let _ = writeln!(
        out,
        "-- (a) normalized latency: fault-free, 0 crash, upper bound --"
    );
    row(
        &mut out,
        &hdr_a.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &w,
    );
    for p in &res.points {
        row(
            &mut out,
            &[
                fmt(p.granularity),
                fmt(p.fault_free_caft),
                fmt(p.fault_free_ftbar),
                fmt(p.caft.zero_crash),
                fmt(p.caft.upper),
                fmt(p.ftsa.zero_crash),
                fmt(p.ftsa.upper),
                fmt(p.ftbar.zero_crash),
                fmt(p.ftbar.upper),
            ],
            &w,
        );
    }

    // Panel (b): crashes.
    let hdr_b = [
        "g", "CAFT0", "CAFT-c", "FTSA0", "FTSA-c", "FTBAR0", "FTBAR-c", "CAFTsrv",
    ];
    let w: Vec<usize> = hdr_b.iter().map(|h| h.len().max(8)).collect();
    let _ = writeln!(
        out,
        "-- (b) normalized latency with 0 crash vs {} crash(es) (CAFTsrv: strict-replay survival) --",
        c.crashes
    );
    row(
        &mut out,
        &hdr_b.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &w,
    );
    for p in &res.points {
        row(
            &mut out,
            &[
                fmt(p.granularity),
                fmt(p.caft.zero_crash),
                fmt(p.caft.crash),
                fmt(p.ftsa.zero_crash),
                fmt(p.ftsa.crash),
                fmt(p.ftbar.zero_crash),
                fmt(p.ftbar.crash),
                fmt(p.caft_strict_completion),
            ],
            &w,
        );
    }

    // Panel (c): overheads.
    let hdr_c = [
        "g", "CAFT0%", "CAFTc%", "FTSA0%", "FTSAc%", "FTBAR0%", "FTBARc%",
    ];
    let w: Vec<usize> = hdr_c.iter().map(|h| h.len().max(8)).collect();
    let _ = writeln!(out, "-- (c) average overhead (%) over fault-free CAFT --");
    row(
        &mut out,
        &hdr_c.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &w,
    );
    for p in &res.points {
        row(
            &mut out,
            &[
                fmt(p.granularity),
                fmt(p.caft.overhead_zero),
                fmt(p.caft.overhead_crash),
                fmt(p.ftsa.overhead_zero),
                fmt(p.ftsa.overhead_crash),
                fmt(p.ftbar.overhead_zero),
                fmt(p.ftbar.overhead_crash),
            ],
            &w,
        );
    }

    // Extra: message counts (the §6 discussion).
    let hdr_m = ["g", "CAFT-msg", "FTSA-msg", "FTBAR-msg"];
    let w: Vec<usize> = hdr_m.iter().map(|h| h.len().max(9)).collect();
    let _ = writeln!(out, "-- mean inter-processor message counts --");
    row(
        &mut out,
        &hdr_m.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &w,
    );
    for p in &res.points {
        row(
            &mut out,
            &[
                fmt(p.granularity),
                fmt(p.caft.remote_msgs),
                fmt(p.ftsa.remote_msgs),
                fmt(p.ftbar.remote_msgs),
            ],
            &w,
        );
    }
    out
}

/// Renders the Proposition 5.1 message-count experiment.
pub fn render_messages(rows: &[MessageRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== message counts vs analytical bounds (Prop. 5.1) ==");
    let hdr = [
        "family",
        "eps",
        "e",
        "CAFT",
        "FTSA",
        "FTBAR",
        "e(ε+1)",
        "e(ε+1)²",
    ];
    let w: Vec<usize> = hdr.iter().map(|h| h.len().max(9)).collect();
    row(
        &mut out,
        &hdr.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &w,
    );
    for r in rows {
        row(
            &mut out,
            &[
                r.family.clone(),
                r.eps.to_string(),
                fmt(r.edges),
                fmt(r.caft),
                fmt(r.ftsa),
                fmt(r.ftbar),
                fmt(r.linear_bound),
                fmt(r.quadratic_bound),
            ],
            &w,
        );
    }
    out
}

/// Renders the Proposition 5.2 resilience experiment.
pub fn render_resilience(rows: &[ResilienceRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== operational resilience (Prop. 5.2) ==");
    let hdr = ["algo", "eps", "patterns", "strict", "failover"];
    let w: Vec<usize> = hdr.iter().map(|h| h.len().max(9)).collect();
    row(
        &mut out,
        &hdr.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &w,
    );
    for r in rows {
        row(
            &mut out,
            &[
                r.algo.clone(),
                r.eps.to_string(),
                r.patterns.to_string(),
                format!("{:.3}", r.strict_rate),
                format!("{:.3}", r.failover_rate),
            ],
            &w,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FigureConfig;
    use crate::runner::run_figure;

    #[test]
    fn figure_table_renders_all_panels() {
        let mut cfg = FigureConfig::new("figX", vec![1.0], 5, 1, 1);
        cfg.graphs_per_point = 1;
        let res = run_figure(&cfg);
        let txt = render_figure(&res);
        assert!(txt.contains("(a) normalized latency"));
        assert!(txt.contains("(b) normalized latency with 0 crash"));
        assert!(txt.contains("(c) average overhead"));
        assert!(txt.contains("message counts"));
        assert!(txt.contains("figX"));
    }
}
