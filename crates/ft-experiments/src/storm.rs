//! The recovery-storm experiment: correlated crash bursts under link
//! contention on a Beneš multistage interconnect.
//!
//! Every other sweep draws independent exponential lifetimes, so repair
//! traffic trickles: crashes are spread over the run and their recovery
//! transfers rarely overlap on a link. This experiment does the
//! opposite — each Monte-Carlo run kills a *burst* of processors at one
//! instant mid-run, so every survivor detects the crashes together and
//! the recovery policies fire all their repair transfers at once. On a
//! contention-free network ([`Contention::Ideal`]) that storm is free;
//! on a [`Topology::Benes`] multistage interconnect, where every
//! processor pair routes through `2r` shared switch hops, the
//! simultaneous transfers collide and the sharing model
//! ([`Contention::Exclusive`] / [`Contention::FairShare`]) stretches
//! them.
//!
//! The headline measurement (recorded in
//! `validation/VALIDATION_network.json`): contention is not a uniform
//! tax. Policies that answer a burst with *many* parallel transfers
//! (re-replication shipping every input of every lost task) pay more
//! than policies that answer with *fewer* or staggered transfers — and
//! at some burst size the induced delay is enough to **flip the policy
//! ranking** relative to the Ideal network ([`ranking_flips`]: among
//! policies completing equally often, the latency preference inverts).
//! Link
//! saturation itself is read from the engine's per-run network counters
//! ([`MetricSet::net_transfers`](ft_runtime::MetricSet),
//! `net_contended`, `net_delay`).
//!
//! Determinism matches the other sweeps: the burst scenarios of a burst
//! size are drawn from a seed that depends only on `(seed, burst)`, so
//! every policy × contention cell at that size replays the **same**
//! storms run-for-run.

use ft_algos::{caft, CommModel};
use ft_graph::gen::{random_layered, RandomDagParams};
use ft_model::FtSchedule;
use ft_platform::{random_instance, Instance, PlatformParams, ProcId, Topology};
use ft_runtime::{
    BatchAccumulator, BatchSummary, Contention, DetectionModel, EngineConfig, Executor,
    RecoveryPolicy,
};
use ft_sim::FaultScenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the recovery-storm sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StormConfig {
    /// Tasks in the workload.
    pub tasks: usize,
    /// Processors `m` — must be a power of two (the Beneš network is
    /// `B(log2 m)`).
    pub procs: usize,
    /// Supported failures ε of the static schedule.
    pub eps: usize,
    /// Granularity of the instance (small = communication-dominated,
    /// the regime where link contention can bite).
    pub granularity: f64,
    /// Burst-size axis: how many processors crash simultaneously per
    /// run (one row group per entry).
    pub burst_sizes: Vec<usize>,
    /// Contention-model axis (the Ideal column is the baseline the
    /// ranking flips are measured against).
    pub contentions: Vec<Contention>,
    /// Monte-Carlo runs per (burst, contention, policy) cell.
    pub runs: usize,
    /// Uniform detection latency of the runtime.
    pub detection_latency: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            tasks: 40,
            procs: 8,
            eps: 2,
            granularity: 0.2,
            burst_sizes: vec![2, 3],
            contentions: vec![
                Contention::Ideal,
                Contention::Exclusive,
                Contention::FairShare,
            ],
            runs: 200,
            detection_latency: 1.0,
            seed: 0x5702,
        }
    }
}

impl StormConfig {
    /// Builds the storm workload: the usual graph/instance draw (same
    /// RNG order as [`WorkloadSpec::build`](crate::WorkloadSpec::build))
    /// but on a [`Topology::Benes`] platform, plus the ε-resilient CAFT
    /// schedule.
    ///
    /// # Panics
    /// When `procs` is not a power of two.
    pub fn build(&self) -> (Instance, FtSchedule) {
        assert!(
            self.procs.is_power_of_two(),
            "the Beneš interconnect needs a power-of-two processor count, got {}",
            self.procs
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let graph = random_layered(&RandomDagParams::default().with_tasks(self.tasks), &mut rng);
        let params = PlatformParams::default()
            .with_procs(self.procs)
            .with_topology(Topology::Benes {
                log2_m: self.procs.trailing_zeros(),
            });
        let inst = random_instance(graph, &params, self.granularity, &mut rng);
        let sched = caft(&inst, self.eps, CommModel::OnePort, self.seed);
        (inst, sched)
    }

    /// The policy roster of the storm: the parameterless built-ins. The
    /// checkpoint columns are left out — the storm isolates *recovery
    /// traffic*, and the interval axis would only dilute the cells.
    pub fn roster(&self) -> Vec<RecoveryPolicy> {
        RecoveryPolicy::ALL.to_vec()
    }

    /// The burst scenario of run `run` at burst size `burst`: `burst`
    /// distinct victims, all crashing at one instant drawn uniformly
    /// from the middle of the nominal schedule (`[0.15, 0.6] ×`
    /// nominal — late enough that data is in flight, early enough that
    /// recovery has room to matter). Depends only on `(seed, burst,
    /// run)`, never on the policy or contention mode.
    pub fn scenario(&self, burst: usize, run: usize, nominal: f64) -> FaultScenario {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (burst as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (run as u64) << 20,
        );
        let at = rng.gen_range(0.15..0.6) * nominal;
        let crashes: Vec<(ProcId, f64)> = rand::seq::index::sample(&mut rng, self.procs, burst)
            .into_iter()
            .map(|p| (ProcId(p as u32), at))
            .collect();
        FaultScenario::timed(&crashes)
    }

    /// The engine config of one cell. The engine seed depends only on
    /// the burst size, so every policy × contention cell of a burst
    /// group shares the engine's internal draws too.
    pub fn engine_config(
        &self,
        burst: usize,
        policy: RecoveryPolicy,
        mode: Contention,
    ) -> EngineConfig {
        EngineConfig {
            policy,
            detection: DetectionModel::uniform(self.detection_latency),
            seed: self.seed ^ burst as u64,
            contention: mode,
        }
    }
}

/// One cell of the storm sweep: a recovery policy at a burst size under
/// a contention model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StormRow {
    /// Processors crashed simultaneously per run.
    pub burst: usize,
    /// Link-contention model of the cell.
    pub contention: Contention,
    /// The Monte-Carlo aggregate.
    pub summary: BatchSummary,
}

impl StormRow {
    /// Transfers charged against the network per run (0 under Ideal).
    pub fn transfers_per_run(&self) -> f64 {
        self.summary.metrics.net_transfers as f64 / self.summary.runs.max(1) as f64
    }

    /// Fraction of charged transfers that were actually delayed by
    /// another transfer on a shared link — the saturation measure.
    pub fn contended_share(&self) -> f64 {
        let total = self.summary.metrics.net_transfers;
        if total == 0 {
            return 0.0;
        }
        self.summary.metrics.net_contended as f64 / total as f64
    }

    /// Total contention-induced delay per run (time units).
    pub fn delay_per_run(&self) -> f64 {
        self.summary.metrics.net_delay.value() / self.summary.runs.max(1) as f64
    }
}

/// Runs the storm sweep: one Beneš CAFT schedule,
/// `|burst_sizes| × |contentions| × |roster|` Monte-Carlo batches, every
/// cell of a burst group replaying the same storms. Deterministic in the
/// configuration.
pub fn run_storm(cfg: &StormConfig) -> Vec<StormRow> {
    let (inst, sched) = cfg.build();
    let nominal = sched.latency();
    let mut rows = Vec::new();
    for &burst in &cfg.burst_sizes {
        let scenarios: Vec<FaultScenario> = (0..cfg.runs)
            .map(|r| cfg.scenario(burst, r, nominal))
            .collect();
        for &mode in &cfg.contentions {
            for policy in cfg.roster() {
                let engine = cfg.engine_config(burst, policy, mode);
                let mut exec = Executor::new(&inst, &sched, &engine);
                let mut acc = BatchAccumulator::new(nominal);
                for scenario in &scenarios {
                    acc.record(scenario.earliest_crash(), exec.run(scenario));
                }
                rows.push(StormRow {
                    burst,
                    contention: mode,
                    summary: acc.finish(policy),
                });
            }
        }
    }
    rows
}

/// Completion-rate band within which two policies are considered tied
/// on completion and ranked by mean slowdown instead (two points — the
/// Monte-Carlo noise floor at the sweep's run counts).
pub const COMPLETION_PARITY: f64 = 0.02;

/// `(burst, policy preferred on Ideal, policy preferred under
/// contention)` triples where a contended mode strictly inverts an
/// Ideal-network preference. `p` is preferred over `q` when their
/// completion rates are within [`COMPLETION_PARITY`] of each other
/// (both non-zero) and `p`'s mean slowdown is strictly lower — the
/// choice a practitioner faces between policies that complete equally
/// often. A flip is a pair preferred one way on the ideal network and
/// the **opposite** way under a contended mode of the same burst group:
/// link contention changed the policy recommendation, not just the
/// absolute numbers.
pub fn ranking_flips(rows: &[StormRow]) -> Vec<(usize, String, String)> {
    let beats = |a: &BatchSummary, b: &BatchSummary| {
        a.completed > 0
            && b.completed > 0
            && (a.completion_rate() - b.completion_rate()).abs() <= COMPLETION_PARITY + 1e-12
            && a.mean_slowdown < b.mean_slowdown - 1e-9
    };
    let cell = |burst: usize, mode: Contention, policy: &RecoveryPolicy| {
        rows.iter()
            .find(|r| r.burst == burst && r.contention == mode && r.summary.policy == *policy)
            .map(|r| &r.summary)
    };
    let mut flips = Vec::new();
    let mut bursts: Vec<usize> = rows.iter().map(|r| r.burst).collect();
    bursts.dedup();
    let policies: Vec<RecoveryPolicy> = rows
        .iter()
        .filter(|r| r.burst == bursts[0] && r.contention == Contention::Ideal)
        .map(|r| r.summary.policy)
        .collect();
    let modes: Vec<Contention> = rows
        .iter()
        .map(|r| r.contention)
        .filter(|m| m.is_contended())
        .collect();
    for &burst in &bursts {
        for &mode in &modes {
            for p in &policies {
                for q in &policies {
                    let (Some(ip), Some(iq)) = (
                        cell(burst, Contention::Ideal, p),
                        cell(burst, Contention::Ideal, q),
                    ) else {
                        continue;
                    };
                    let (Some(cp), Some(cq)) = (cell(burst, mode, p), cell(burst, mode, q)) else {
                        continue;
                    };
                    if beats(ip, iq) && beats(cq, cp) {
                        flips.push((burst, p.label(), q.label()));
                    }
                }
            }
        }
    }
    flips.sort();
    flips.dedup();
    flips
}

/// ASCII table of the storm sweep.
pub fn render_storm(cfg: &StormConfig, rows: &[StormRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "recovery storm on a Benes B({}) interconnect ({} procs, granularity {}, \
         {} runs/cell; burst = simultaneous crashes per run)\n",
        cfg.procs.trailing_zeros(),
        cfg.procs,
        cfg.granularity,
        cfg.runs,
    ));
    out.push_str(
        "  burst  network     policy          completion   mean slowdown   xfers/run   \
         contended   delay/run\n",
    );
    let mut last = (usize::MAX, "");
    for row in rows {
        let key = (row.burst, row.contention.name());
        if key != last {
            out.push_str(&format!("  {:-<100}\n", ""));
            last = key;
        }
        let s = &row.summary;
        out.push_str(&format!(
            "  {:>5}  {:<10}  {:<14}  {:>8.1}%   {:>12.3}   {:>9.2}   {:>8.1}%   {:>9.3}\n",
            row.burst,
            row.contention.name(),
            s.policy_label.as_str(),
            s.completion_rate() * 100.0,
            s.mean_slowdown,
            row.transfers_per_run(),
            row.contended_share() * 100.0,
            row.delay_per_run(),
        ));
    }
    let flips = ranking_flips(rows);
    if flips.is_empty() {
        out.push_str("  no policy-ranking flips: contention was a uniform tax here\n");
    } else {
        for (burst, better, worse) in &flips {
            out.push_str(&format!(
                "  flip at burst {burst}: '{better}' beats '{worse}' on the ideal network, \
                 loses to it under contention\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> StormConfig {
        StormConfig {
            tasks: 25,
            runs: 30,
            burst_sizes: vec![2],
            ..Default::default()
        }
    }

    #[test]
    fn storm_shape_and_determinism() {
        let cfg = quick();
        let rows = run_storm(&cfg);
        assert_eq!(rows.len(), 3 * RecoveryPolicy::ALL.len());
        let again = run_storm(&cfg);
        assert_eq!(
            serde_json::to_string(&rows).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        let table = render_storm(&cfg, &rows);
        assert!(table.contains("fair-share"));
        assert!(table.contains("exclusive"));
    }

    #[test]
    fn scenarios_are_shared_across_cells_and_burst_sized() {
        let cfg = quick();
        let s1 = cfg.scenario(2, 7, 10.0);
        let s2 = cfg.scenario(2, 7, 10.0);
        assert_eq!(
            serde_json::to_string(&s1).unwrap(),
            serde_json::to_string(&s2).unwrap()
        );
        assert_eq!(s1.crashes().count(), 2);
        // All victims crash at the same instant — that is the storm.
        let times: Vec<f64> = s1.crashes().map(|(_, t)| t).collect();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        assert!(times[0] > 0.0 && times[0] < 10.0);
    }

    #[test]
    fn ideal_rows_never_touch_the_network() {
        let rows = run_storm(&quick());
        for row in rows.iter().filter(|r| r.contention == Contention::Ideal) {
            assert_eq!(row.summary.metrics.net_transfers, 0);
            assert_eq!(row.transfers_per_run(), 0.0);
            assert_eq!(row.delay_per_run(), 0.0);
        }
    }

    #[test]
    fn contended_rows_charge_links_and_observe_collisions() {
        let rows = run_storm(&quick());
        for row in rows.iter().filter(|r| r.contention.is_contended()) {
            assert!(
                row.summary.metrics.net_transfers > 0,
                "{} under {} charged no transfers",
                row.summary.policy_label,
                row.contention.name()
            );
            assert!(row.delay_per_run() >= 0.0);
        }
        // The storm exists: somewhere, transfers actually collided.
        assert!(
            rows.iter().any(|r| r.summary.metrics.net_contended > 0),
            "no cell observed link contention — the storm never materialized"
        );
    }

    #[test]
    fn contention_flips_a_policy_ranking() {
        // The acceptance cell (EXPERIMENTS.md / VALIDATION_network.json):
        // at the default dimensions, link contention must change at
        // least one policy recommendation, not just the absolute
        // numbers.
        let cfg = StormConfig::default();
        let rows = run_storm(&cfg);
        assert!(
            !ranking_flips(&rows).is_empty(),
            "contention never flipped a policy ranking:\n{}",
            render_storm(&cfg, &rows)
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_platform_is_rejected() {
        StormConfig {
            procs: 6,
            ..quick()
        }
        .build();
    }
}
