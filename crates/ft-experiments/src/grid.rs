//! The full §6 evaluation grid: every (m, ε, granularity) cell in one
//! sweep, with the ε-independent setup amortized.
//!
//! The paper presents the grid as six figures — three platform settings
//! `(m, ε) ∈ {(10, 1), (10, 3), (20, 5)}` crossed with two granularity
//! sweeps (type A `[0.2, 2.0]`, type B `[1, 10]`). [`run_grid`] runs the
//! whole cross product in one call and shares what the figure-at-a-time
//! path recomputes: for each (m, granularity, graph) draw, the instance
//! generation and the fault-free baselines (`CAFT* = HEFT` and fault-free
//! FTBAR — the anchors of every overhead series) are computed **once**
//! and reused by every ε evaluated on that platform size. At the paper's
//! settings that halves the setup work for the m = 10 column (ε = 1 and
//! ε = 3 share draws), and the sharing grows with every ε added to a
//! platform.
//!
//! [`render_isoclines`] renders the grid's completion surface — the
//! strict-replay survival of CAFT per cell — as an ASCII isocline chart
//! (granularity on the x-axis, one row per platform setting), the
//! at-a-glance answer to *where* in the grid the Proposition 5.2 gap
//! bites. The validation harness ([`crate::validate`]) evaluates its
//! grid-family claims over a [`GridResult`].

use crate::config::{sweep_a, sweep_b};
use crate::runner::{derive_seed, PointAcc, PointResult, SharedDraw};
use serde::{Deserialize, Serialize};

/// One platform setting of the grid: `m` processors scheduling for ε
/// supported failures, crash experiments killing `crashes` of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformSetting {
    /// Number of processors `m`.
    pub procs: usize,
    /// Supported failures ε.
    pub eps: usize,
    /// Processors killed in the crash experiment.
    pub crashes: usize,
}

/// Configuration of one grid sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridConfig {
    /// The platform settings (the paper uses three; settings sharing a
    /// processor count share instance draws and fault-free baselines).
    pub platforms: Vec<PlatformSetting>,
    /// The granularity axis (the paper's grid is the union of the type A
    /// and type B sweeps).
    pub granularities: Vec<f64>,
    /// Random graphs averaged per cell.
    pub graphs_per_point: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl GridConfig {
    /// The paper's full grid: `(10, 1, 1)`, `(10, 3, 2)`, `(20, 5, 3)`
    /// over the union of the type A and type B granularity sweeps, 60
    /// graphs per cell.
    pub fn paper() -> Self {
        let mut granularities = sweep_a();
        for g in sweep_b() {
            if !granularities.iter().any(|&x| (x - g).abs() < 1e-12) {
                granularities.push(g);
            }
        }
        granularities.sort_by(|a, b| a.partial_cmp(b).unwrap());
        GridConfig {
            platforms: vec![
                PlatformSetting {
                    procs: 10,
                    eps: 1,
                    crashes: 1,
                },
                PlatformSetting {
                    procs: 10,
                    eps: 3,
                    crashes: 2,
                },
                PlatformSetting {
                    procs: 20,
                    eps: 5,
                    crashes: 3,
                },
            ],
            granularities,
            graphs_per_point: 60,
            seed: 0x5EED,
        }
    }

    /// Thins the grid for tests and CI smoke runs: `n` graphs per cell
    /// and every other granularity.
    pub fn quick(mut self, n: usize) -> Self {
        self.graphs_per_point = n;
        self.granularities = self.granularities.into_iter().step_by(2).collect();
        self
    }
}

/// One cell of the grid: a platform setting at a granularity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridCell {
    /// The platform setting of this cell.
    pub platform: PlatformSetting,
    /// Every figure series at this cell (same shape as a figure point).
    pub point: PointResult,
}

/// The full grid sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridResult {
    /// The configuration that produced this result.
    pub config: GridConfig,
    /// Cells in (platform, granularity) order.
    pub cells: Vec<GridCell>,
}

impl GridResult {
    /// The cells of one platform setting, in granularity order.
    pub fn series(&self, platform: PlatformSetting) -> Vec<&GridCell> {
        self.cells
            .iter()
            .filter(|c| c.platform == platform)
            .collect()
    }
}

/// Runs the whole grid. For each (m, granularity, graph) the instance
/// and the fault-free baselines are drawn once and every ε-cell of that
/// platform size is evaluated on the shared draw, so adding an ε setting
/// to an existing platform size costs only its three fault-tolerant
/// schedules, never a new setup pass. Deterministic in the
/// configuration; cells sharing `procs` see identical draws (the
/// per-graph seed depends only on the granularity index and graph
/// index), so ε-columns are draw-for-draw comparable.
pub fn run_grid(cfg: &GridConfig) -> GridResult {
    // Group ε-settings by platform size, preserving declaration order.
    let mut sizes: Vec<usize> = Vec::new();
    for p in &cfg.platforms {
        if !sizes.contains(&p.procs) {
            sizes.push(p.procs);
        }
    }

    let mut accs: Vec<(PlatformSetting, Vec<PointAcc>)> = cfg
        .platforms
        .iter()
        .map(|&p| {
            (
                p,
                (0..cfg.granularities.len())
                    .map(|_| PointAcc::new())
                    .collect(),
            )
        })
        .collect();

    for (pi, &gran) in cfg.granularities.iter().enumerate() {
        for &m in &sizes {
            for gi in 0..cfg.graphs_per_point {
                let seed = derive_seed(cfg.seed, pi, gi);
                // The shared setup: one instance + fault-free baselines
                // for every ε evaluated at this platform size.
                let draw = SharedDraw::new(m, gran, seed);
                for (p, points) in accs.iter_mut().filter(|(p, _)| p.procs == m) {
                    points[pi].record(&draw, p.eps, p.crashes);
                }
            }
        }
    }

    let cells = accs
        .iter()
        .flat_map(|(p, points)| {
            points
                .iter()
                .zip(&cfg.granularities)
                .map(|(acc, &gran)| GridCell {
                    platform: *p,
                    point: acc.finish(gran),
                })
        })
        .collect();
    GridResult {
        config: cfg.clone(),
        cells,
    }
}

/// The glyph ramp of the isocline chart: nine completion levels from
/// empty (0) to full (1), each glyph covering an equal fraction.
const RAMP: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];

fn glyph(completion: f64) -> char {
    let ix = (completion.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[ix]
}

/// Renders the completion surface of the grid — CAFT's strict-replay
/// survival per cell — as an ASCII isocline chart: granularity along the
/// x-axis, one row per platform setting, each cell a glyph from a
/// nine-level ramp. The `@` region is where static ε-replication alone
/// survives the crash experiment; the blank-to-`=` region is where the
/// Proposition 5.2 gap bites and runtime fail-over is load-bearing.
pub fn render_isoclines(res: &GridResult) -> String {
    let mut out = String::new();
    out.push_str(
        "completion isoclines — CAFT strict-replay survival over the (m, ε) × granularity grid\n",
    );
    out.push_str("  ramp: ");
    for (i, g) in RAMP.iter().enumerate() {
        let lo = i as f64 / RAMP.len() as f64;
        out.push_str(&format!("'{g}'≥{lo:.2} "));
    }
    out.push('\n');
    out.push_str("               g:");
    for g in &res.config.granularities {
        out.push_str(&format!("{g:>6.1}"));
    }
    out.push('\n');
    for &p in &res.config.platforms {
        out.push_str(&format!(
            "  m={:<2} ε={} kill {}:",
            p.procs, p.eps, p.crashes
        ));
        for cell in res.series(p) {
            out.push_str(&format!("{:>6}", glyph(cell.point.caft_strict_completion)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GridConfig {
        GridConfig {
            platforms: vec![
                PlatformSetting {
                    procs: 6,
                    eps: 1,
                    crashes: 1,
                },
                PlatformSetting {
                    procs: 6,
                    eps: 2,
                    crashes: 2,
                },
            ],
            granularities: vec![0.4, 2.0],
            graphs_per_point: 2,
            seed: 0x5EED,
        }
    }

    #[test]
    fn paper_grid_covers_both_sweeps_without_duplicates() {
        let cfg = GridConfig::paper();
        assert_eq!(cfg.platforms.len(), 3);
        // 10 type A + 10 type B granularities share exactly {1.0, 2.0}.
        assert_eq!(cfg.granularities.len(), 18);
        let mut sorted = cfg.granularities.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 18, "duplicate granularities in the union");
        assert_eq!(cfg.graphs_per_point, 60);
        let quick = cfg.quick(4);
        assert_eq!(quick.graphs_per_point, 4);
        assert_eq!(quick.granularities.len(), 9);
    }

    #[test]
    fn grid_runs_every_cell_and_is_deterministic() {
        let cfg = tiny();
        let res = run_grid(&cfg);
        assert_eq!(res.cells.len(), 4);
        for cell in &res.cells {
            assert!(cell.point.fault_free_caft > 0.0);
            assert!(cell.point.caft.zero_crash > 0.0);
            assert!((0.0..=1.0).contains(&cell.point.caft_strict_completion));
        }
        let again = run_grid(&cfg);
        assert_eq!(
            serde_json::to_string(&res).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn shared_draws_make_eps_columns_comparable() {
        // Both ε-settings run on the *same* instances, so the
        // ε-independent series are identical across the two columns.
        let cfg = tiny();
        let res = run_grid(&cfg);
        let a = res.series(cfg.platforms[0]);
        let b = res.series(cfg.platforms[1]);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(
                ca.point.fault_free_caft.to_bits(),
                cb.point.fault_free_caft.to_bits()
            );
            assert_eq!(
                ca.point.fault_free_ftbar.to_bits(),
                cb.point.fault_free_ftbar.to_bits()
            );
            // And more replication is never free: ε = 2 costs at least
            // as much 0-crash latency as ε = 1 on the same draws.
            assert!(cb.point.caft.zero_crash >= ca.point.caft.zero_crash - 1e-9);
        }
    }

    #[test]
    fn grid_cells_match_the_figure_path() {
        // One ε-cell of the grid equals a figure run at the same
        // (m, ε, granularities, seed): the shared-setup path changes
        // the schedule of work, not the numbers.
        let cfg = tiny();
        let res = run_grid(&cfg);
        let fig = crate::runner::run_figure(&{
            let mut f =
                crate::config::FigureConfig::new("grid-check", cfg.granularities.clone(), 6, 1, 1);
            f.graphs_per_point = cfg.graphs_per_point;
            f.seed = cfg.seed;
            f
        });
        for (cell, point) in res.series(cfg.platforms[0]).iter().zip(&fig.points) {
            assert_eq!(
                serde_json::to_string(&cell.point).unwrap(),
                serde_json::to_string(point).unwrap(),
                "grid cell drifted from the figure path at g {}",
                point.granularity
            );
        }
    }

    #[test]
    fn isoclines_render_one_row_per_platform() {
        let cfg = tiny();
        let res = run_grid(&cfg);
        let chart = render_isoclines(&res);
        assert!(chart.contains("completion isoclines"));
        assert!(chart.contains("m=6  ε=1 kill 1:"));
        assert!(chart.contains("m=6  ε=2 kill 2:"));
        assert!(chart.contains("ramp:"));
        // Exactly header lines + one row per platform.
        assert_eq!(chart.lines().count(), 3 + cfg.platforms.len());
    }

    #[test]
    fn glyph_ramp_is_monotone() {
        assert_eq!(glyph(0.0), ' ');
        assert_eq!(glyph(1.0), '@');
        let mut last = None;
        for i in 0..=20 {
            let g = glyph(i as f64 / 20.0);
            let pos = RAMP.iter().position(|&c| c == g).unwrap();
            if let Some(l) = last {
                assert!(pos >= l, "ramp must be monotone");
            }
            last = Some(pos);
        }
    }
}
