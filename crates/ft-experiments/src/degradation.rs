//! Degradation vs. failure rate: the online-runtime experiment.
//!
//! The paper's §6 crash experiments kill a fixed number of processors at
//! t = 0 and replay statically. The online engine in `ft-runtime` opens
//! the temporal axis: processors crash *during* execution with
//! exponential lifetimes, failures are detected after a latency, and a
//! recovery policy reacts. This experiment sweeps the failure rate (mean
//! time to failure as a multiple of the schedule's nominal latency) and
//! reports, per [`RecoveryPolicy`], the completion rate and the latency
//! degradation over a Monte-Carlo batch — the online analogue of the
//! figure panels (b)/(c).
//!
//! Since the checkpoint/restart PR the sweep is **four-way**: next to
//! `Absorb` / `ReReplicate` / `Reschedule` it runs one `Checkpoint`
//! policy per configured interval (intervals and the per-checkpoint
//! overhead are expressed as multiples of the instance's mean task cost,
//! so they track the workload's scale). `only_policy` restricts the
//! sweep to a single policy name — the `paper-figures degradation
//! --policy checkpoint` path.
//!
//! Since the runtime-front-door PR the sweep also has a **detection
//! axis** ([`DetectionKind`], the `paper-figures degradation --detection
//! uniform|per-proc|gossip` path): the same policies and fault draws can
//! be re-run under uniform detection, per-processor heartbeat spreads, or
//! gossip propagation, isolating how much of a policy's payout survives
//! imperfect failure detectors (repair is only placed on survivors that
//! already know about the crash — see DESIGN.md §7).
//!
//! Since the open-policy PR the roster is drawn from the
//! [`RecoveryPolicy::ALL`] registry (new parameterless built-ins —
//! `WarmSpare` today — join the sweep automatically) and every rate row
//! additionally runs one
//! [`AdaptiveCheckpoint`](RecoveryPolicy::AdaptiveCheckpoint) policy
//! tuned to that row's MTTF: the Young/Daly interval
//! `τ* = √(2 · overhead · MTTF)` tracks the failure pressure, so one
//! policy spans the whole fixed-interval column family (the comparison
//! recorded in EXPERIMENTS.md).

use crate::sweep::{SweepGrid, WorkloadSpec};
use ft_runtime::{
    BatchSummary, Contention, DetectionModel, FailureKind, RecoveryPolicy, RepairModel,
};
use serde::{Deserialize, Serialize};

/// Configuration of the degradation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Tasks in the workload.
    pub tasks: usize,
    /// Processors `m`.
    pub procs: usize,
    /// Supported failures ε of the static schedule.
    pub eps: usize,
    /// Granularity of the instance.
    pub granularity: f64,
    /// MTTF sweep, as multiples of the schedule's nominal latency
    /// (descending = increasing failure pressure).
    pub mttf_factors: Vec<f64>,
    /// Checkpoint intervals to sweep, as multiples of the instance's
    /// mean task cost (one `Checkpoint` policy per entry).
    pub checkpoint_intervals: Vec<f64>,
    /// Per-checkpoint overhead, as a multiple of the mean task cost.
    pub checkpoint_overhead: f64,
    /// Restrict the sweep to the policy with this
    /// [`name`](RecoveryPolicy::name) (e.g. `"checkpoint"`); `None` runs
    /// the full four-way comparison.
    pub only_policy: Option<String>,
    /// Monte-Carlo runs per (factor, policy) cell.
    pub runs: usize,
    /// Detection latency of the runtime (the scale knob of every
    /// [`DetectionKind`]: the uniform delay, the centre of the
    /// per-processor spread, twice the gossip period).
    pub detection_latency: f64,
    /// Which detection model the runtime uses (the `--detection` axis).
    pub detection: DetectionKind,
    /// Mean time to repair as a multiple of the nominal latency (the
    /// `--transient`/`--mttr` axis): `Some(f)` draws transient failures
    /// with exponential repairs of mean `f × nominal` (crashed
    /// processors reboot and may crash again — the rejuvenation
    /// experiments); `None` keeps the paper's permanent fail-stop model.
    pub mttr_factor: Option<f64>,
    /// Base RNG seed.
    pub seed: u64,
}

/// The detection-model axis of the sweep: a parameter-free selector that
/// [`DegradationConfig::detection_model`] turns into a concrete
/// [`DetectionModel`] scaled by `detection_latency`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionKind {
    /// Every survivor detects `detection_latency` after the crash.
    Uniform,
    /// Heterogeneous heartbeats: survivor delays evenly spread over
    /// `[0.5, 1.5] · detection_latency` (same mean as `Uniform`).
    PerProcessor,
    /// Seeded gossip rounds of period `detection_latency / 2`, fanout 2:
    /// the first observer notices after one period (i.e. at *half* the
    /// uniform delay — earlier, but alone), and platform-wide knowledge
    /// takes several rounds more.
    Gossip,
}

impl DetectionKind {
    /// Parses a `--detection` CLI value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(DetectionKind::Uniform),
            "per-proc" | "per-processor" => Some(DetectionKind::PerProcessor),
            "gossip" => Some(DetectionKind::Gossip),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            DetectionKind::Uniform => "uniform",
            DetectionKind::PerProcessor => "per-proc",
            DetectionKind::Gossip => "gossip",
        }
    }

    /// The concrete [`DetectionModel`] of this selector on an
    /// `m`-processor platform: `latency` is the scale knob (the uniform
    /// delay, the centre of the per-processor spread, twice the gossip
    /// period) and `seed` drives the gossip rounds.
    pub fn model(self, m: usize, latency: f64, seed: u64) -> DetectionModel {
        match self {
            DetectionKind::Uniform => DetectionModel::uniform(latency),
            DetectionKind::PerProcessor => DetectionModel::per_processor_spread(m, latency),
            DetectionKind::Gossip => DetectionModel::Gossip {
                period: latency / 2.0,
                fanout: 2,
                seed,
            },
        }
    }
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            tasks: 60,
            procs: 10,
            eps: 1,
            granularity: 1.0,
            mttf_factors: vec![16.0, 8.0, 4.0, 2.0, 1.0],
            checkpoint_intervals: vec![0.25, 1.0],
            checkpoint_overhead: 0.005,
            only_policy: None,
            runs: 400,
            detection_latency: 1.0,
            detection: DetectionKind::Uniform,
            mttr_factor: None,
            seed: 0x5EED,
        }
    }
}

impl DegradationConfig {
    /// The policy roster of one sweep cell at the given failure rate, in
    /// presentation order: the [`RecoveryPolicy::ALL`] registry of
    /// parameterless built-ins, one `Checkpoint` per configured
    /// interval, then one `AdaptiveCheckpoint` whose Young/Daly interval
    /// is tuned to the cell's `mttf` — filtered down when `only_policy`
    /// is set.
    pub fn policies(&self, mean_task_cost: f64, mttf: f64) -> Vec<RecoveryPolicy> {
        self.grid().roster(mean_task_cost, mttf)
    }

    /// The workload recipe of the sweep, as a serializable
    /// [`WorkloadSpec`]: [`build`](WorkloadSpec::build) reproduces the
    /// sweep's graph → instance → schedule pipeline byte-for-byte.
    pub fn workload(&self) -> WorkloadSpec {
        WorkloadSpec {
            tasks: self.tasks,
            procs: self.procs,
            eps: self.eps,
            granularity: self.granularity,
            seed: self.seed,
        }
    }

    /// The scenario axes of the sweep, as a serializable [`SweepGrid`]
    /// (singleton MTTR and detection axes — the degradation sweep varies
    /// them one config at a time).
    pub fn grid(&self) -> SweepGrid {
        SweepGrid {
            mttf_factors: self.mttf_factors.clone(),
            mttr_factors: vec![self.mttr_factor],
            detections: vec![self.detection],
            checkpoint_intervals: self.checkpoint_intervals.clone(),
            checkpoint_overhead: self.checkpoint_overhead,
            only_policy: self.only_policy.clone(),
            runs: self.runs,
            detection_latency: self.detection_latency,
            seed: self.seed,
            contention: Contention::Ideal,
        }
    }

    /// The failure kind of the sweep's Monte-Carlo draws for a schedule
    /// of the given nominal latency: permanent fail-stop, or — when
    /// `mttr_factor` is set — transient failures with exponential repairs
    /// of mean `mttr_factor × nominal` and new epochs drawn up to a
    /// `4 × nominal` horizon. The horizon keeps the draw finite; it also
    /// means a run still going past `4 × nominal` faces no *further*
    /// attrition, while the permanent column draws unbounded crash
    /// times — so permanent-vs-transient completion is an aggregate
    /// comparison with a known tail bias toward transient (second-order
    /// here: completed transient runs finish near `1 × nominal`, far
    /// inside the horizon; the caveat is spelled out in EXPERIMENTS.md).
    pub fn failure_kind(&self, nominal: f64) -> FailureKind {
        match self.mttr_factor {
            None => FailureKind::Permanent,
            Some(f) => FailureKind::transient(
                RepairModel::Exponential { mean: f * nominal },
                4.0 * nominal,
            ),
        }
    }

    /// The concrete [`DetectionModel`] of the sweep on an `m`-processor
    /// platform (see [`DetectionKind`] for the scaling conventions).
    pub fn detection_model(&self, m: usize) -> DetectionModel {
        self.detection.model(m, self.detection_latency, self.seed)
    }
}

/// One cell of the sweep: a policy at a failure rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationRow {
    /// MTTF as a multiple of the nominal latency.
    pub mttf_factor: f64,
    /// The Monte-Carlo aggregate for each policy at this rate.
    pub summary: BatchSummary,
}

/// Runs the sweep: one CAFT schedule, `|mttf_factors| × |policies|`
/// Monte-Carlo batches. Deterministic in the configuration; every policy
/// sees the **same** fault draws at a given rate (the simulation seed
/// depends only on the rate), so cells in one rate group are run-for-run
/// comparable.
///
/// Since the sweep-service PR this is a thin composition of the
/// job-facing [`sweep`](crate::sweep) types — [`WorkloadSpec::build`],
/// then the whole grid through
/// [`simulate_grid`](ft_runtime::simulate_grid), which shares one warm
/// scratch-arena pool and one static plan per policy across all cells —
/// byte-identical to the historical fused per-cell loop (pinned by the
/// golden tests and `sweep::tests`).
pub fn run_degradation(cfg: &DegradationConfig) -> Vec<DegradationRow> {
    let (inst, sched) = cfg.workload().build();
    let cells = cfg.grid().cells(inst.mean_task_cost(), sched.latency());
    let mcs: Vec<_> = cells
        .iter()
        .map(|cell| cell.monte_carlo_config(&inst, &sched))
        .collect();
    cells
        .iter()
        .zip(ft_runtime::simulate_grid(&inst, &sched, &mcs))
        .map(|(cell, summary)| DegradationRow {
            mttf_factor: cell.mttf_factor,
            summary,
        })
        .collect()
}

/// ASCII table of the sweep.
pub fn render_degradation(cfg: &DegradationConfig, rows: &[DegradationRow]) -> String {
    let mut out = String::new();
    let failures = match cfg.mttr_factor {
        None => "permanent".to_string(),
        Some(f) => format!("transient, exp MTTR = {f:.2}x nominal"),
    };
    out.push_str(&format!(
        "degradation vs. failure rate (exponential lifetimes; MTTF in units of the \
         nominal latency; detection: {}; failures: {failures})\n",
        cfg.detection_model(cfg.procs).label(),
    ));
    out.push_str(
        "  MTTF   policy                    completion   mean slowdown   recovered/run   \
         replicas/run   msgs/run   ck-paid/run   saved/run\n",
    );
    let mut last = f64::NAN;
    for row in rows {
        let s = &row.summary;
        if row.mttf_factor != last {
            out.push_str(&format!("  {:-<130}\n", ""));
            last = row.mttf_factor;
        }
        let runs = s.runs.max(1) as f64;
        out.push_str(&format!(
            "  {:>5.1}  {:<24}  {:>8.1}%   {:>12.3}   {:>13.2}   {:>12.2}   {:>8.2}   \
             {:>11.2}   {:>9.2}\n",
            row.mttf_factor,
            s.policy_label.as_str(),
            s.completion_rate() * 100.0,
            s.mean_slowdown,
            s.tasks_recovered as f64 / runs,
            s.recovery_replicas as f64 / runs,
            s.recovery_messages as f64 / runs,
            s.mean_checkpoint_overhead(),
            s.mean_work_saved(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_FACTORS: [f64; 3] = [8.0, 2.0, 1.0];

    fn quick() -> DegradationConfig {
        DegradationConfig {
            tasks: 25,
            procs: 6,
            runs: 40,
            mttf_factors: QUICK_FACTORS.to_vec(),
            ..Default::default()
        }
    }

    fn by_policy<'a>(
        rows: &'a [DegradationRow],
        factor: f64,
        pred: impl Fn(&RecoveryPolicy) -> bool + 'a,
    ) -> impl Iterator<Item = &'a DegradationRow> {
        rows.iter()
            .filter(move |r| r.mttf_factor == factor && pred(&r.summary.policy))
    }

    #[test]
    fn sweep_shape_and_determinism() {
        let cfg = quick();
        let rows = run_degradation(&cfg);
        // The full registry of parameterless built-ins + one checkpoint
        // policy per interval + the per-rate adaptive policy, per rate.
        assert_eq!(
            rows.len(),
            3 * (RecoveryPolicy::ALL.len() + cfg.checkpoint_intervals.len() + 1)
        );
        let again = run_degradation(&cfg);
        assert_eq!(
            serde_json::to_string(&rows).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        let table = render_degradation(&cfg, &rows);
        assert!(table.contains("re-replicate"));
        assert!(table.contains("warm-spare"));
        assert!(table.contains("ckpt τ="));
        assert!(table.contains("adapt τ*="));
        assert!(table.contains("8.0"));
        assert!(table.contains("uniform δ=1.00"));
    }

    #[test]
    fn detection_axis_changes_the_model_not_the_roster() {
        for kind in [
            DetectionKind::Uniform,
            DetectionKind::PerProcessor,
            DetectionKind::Gossip,
        ] {
            let cfg = DegradationConfig {
                detection: kind,
                mttf_factors: vec![2.0],
                runs: 30,
                ..quick()
            };
            let rows = run_degradation(&cfg);
            assert_eq!(
                rows.len(),
                RecoveryPolicy::ALL.len() + cfg.checkpoint_intervals.len() + 1
            );
            let table = render_degradation(&cfg, &rows);
            assert!(table.contains(cfg.detection_model(cfg.procs).label().as_str()));
            // Recovery only ever adds replicas, so the dominance over
            // Absorb survives any detection model.
            let absorb = by_policy(&rows, 2.0, |p| *p == RecoveryPolicy::Absorb)
                .next()
                .unwrap();
            for r in by_policy(&rows, 2.0, |p| *p != RecoveryPolicy::Absorb) {
                assert!(
                    r.summary.completed >= absorb.summary.completed,
                    "{} under {} completed {} < absorb {}",
                    r.summary.policy.label(),
                    kind.name(),
                    r.summary.completed,
                    absorb.summary.completed
                );
            }
        }
    }

    #[test]
    fn adaptive_checkpoint_tracks_the_rate() {
        // The adaptive entry is the only per-rate one: its MTTF — and
        // therefore its Young/Daly interval — must follow the row.
        let cfg = quick();
        let mttfs: Vec<f64> = [8.0, 2.0]
            .iter()
            .flat_map(|&f| cfg.policies(1.0, 10.0 * f))
            .filter_map(|p| match p {
                RecoveryPolicy::AdaptiveCheckpoint { mttf, .. } => Some(mttf),
                _ => None,
            })
            .collect();
        assert_eq!(mttfs, vec![80.0, 20.0]);
        let only = DegradationConfig {
            only_policy: Some("adaptive-checkpoint".into()),
            ..quick()
        };
        let rows = run_degradation(&only);
        assert_eq!(rows.len(), 3, "one adaptive row per rate");
        assert!(rows
            .iter()
            .all(|r| matches!(r.summary.policy, RecoveryPolicy::AdaptiveCheckpoint { .. })));
    }

    #[test]
    fn adaptive_beats_every_fixed_checkpoint_somewhere() {
        // The redesign's acceptance cell (EXPERIMENTS.md): at some
        // failure rate, the per-rate Young/Daly interval beats *every*
        // fixed-interval column — per column, completing more runs, or
        // at least as many with a strictly better mean slowdown. The
        // regime that separates the policies is a non-trivial checkpoint
        // premium (0.1 × mean task cost): Young/Daly then prices the
        // insurance per rate — opting out entirely when the MTTF is long
        // enough that no fixed column's premium ever pays for itself.
        let cfg = DegradationConfig {
            checkpoint_overhead: 0.1,
            ..quick()
        };
        let rows = run_degradation(&cfg);
        let beats = |a: &BatchSummary, b: &BatchSummary| {
            a.completed > b.completed
                || (a.completed >= b.completed && a.mean_slowdown < b.mean_slowdown)
        };
        let cell = QUICK_FACTORS.iter().find(|&&factor| {
            let adaptive = by_policy(&rows, factor, |p| {
                matches!(p, RecoveryPolicy::AdaptiveCheckpoint { .. })
            })
            .next()
            .unwrap();
            by_policy(&rows, factor, |p| {
                matches!(p, RecoveryPolicy::Checkpoint { .. })
            })
            .all(|fixed| beats(&adaptive.summary, &fixed.summary))
        });
        assert!(
            cell.is_some(),
            "no rate where adaptive beats every fixed checkpoint column:\n{}",
            render_degradation(&cfg, &rows)
        );
    }

    #[test]
    fn warm_spare_matches_re_replicate_under_permanent_failures() {
        // Pre-staging only fires at rejoin events: with permanent
        // failures the two policies must aggregate identically (label
        // aside) — the warm-spare payout is a transient-regime effect.
        let rows = run_degradation(&quick());
        for &factor in &QUICK_FACTORS {
            let rr = by_policy(&rows, factor, |p| *p == RecoveryPolicy::ReReplicate)
                .next()
                .unwrap();
            let ws = by_policy(&rows, factor, |p| *p == RecoveryPolicy::WarmSpare)
                .next()
                .unwrap();
            assert_eq!(rr.summary.completed, ws.summary.completed);
            assert_eq!(rr.summary.recovery_replicas, ws.summary.recovery_replicas);
            assert_eq!(rr.summary.recovery_messages, ws.summary.recovery_messages);
            assert_eq!(
                rr.summary.mean_latency.to_bits(),
                ws.summary.mean_latency.to_bits()
            );
        }
    }

    #[test]
    fn per_processor_spread_has_one_delay_per_processor() {
        let cfg = DegradationConfig {
            detection: DetectionKind::PerProcessor,
            ..quick()
        };
        let DetectionModel::PerProcessor(delays) = cfg.detection_model(cfg.procs) else {
            panic!("expected a per-processor model");
        };
        assert_eq!(delays.len(), cfg.procs);
        assert!((delays[0] - 0.5 * cfg.detection_latency).abs() < 1e-12);
        assert!(
            (delays[cfg.procs - 1] - 1.5 * cfg.detection_latency).abs() < 1e-12,
            "spread must top out at 1.5x the latency knob"
        );
    }

    #[test]
    fn only_policy_restricts_the_roster() {
        let cfg = DegradationConfig {
            only_policy: Some("checkpoint".into()),
            ..quick()
        };
        let rows = run_degradation(&cfg);
        assert_eq!(rows.len(), 3 * cfg.checkpoint_intervals.len());
        assert!(
            rows.iter()
                .all(|r| matches!(r.summary.policy, RecoveryPolicy::Checkpoint { .. })),
            "adaptive-checkpoint has its own name and must not leak into --policy checkpoint"
        );
    }

    #[test]
    fn recovery_never_completes_less() {
        let rows = run_degradation(&quick());
        for &factor in &QUICK_FACTORS {
            let absorb = by_policy(&rows, factor, |p| *p == RecoveryPolicy::Absorb)
                .next()
                .unwrap();
            for r in by_policy(&rows, factor, |p| *p != RecoveryPolicy::Absorb) {
                assert!(
                    r.summary.completed >= absorb.summary.completed,
                    "{} completed {} < absorb {} at MTTF {factor}",
                    r.summary.policy.label(),
                    r.summary.completed,
                    absorb.summary.completed
                );
            }
        }
    }

    #[test]
    fn harsher_rates_complete_no_more_under_absorb() {
        let rows = run_degradation(&quick());
        let absorb: Vec<_> = rows
            .iter()
            .filter(|r| r.summary.policy == RecoveryPolicy::Absorb)
            .collect();
        assert!(absorb[0].mttf_factor > absorb[1].mttf_factor);
        assert!(absorb[0].summary.completed >= absorb[1].summary.completed);
    }

    #[test]
    fn transient_axis_rejuvenates_the_sweep() {
        // The `--transient/--mttr` axis: crashed processors reboot after
        // an exponential repair and recovery policies re-enlist them.
        let perm = quick();
        let tra = DegradationConfig {
            mttr_factor: Some(0.25),
            ..quick()
        };
        let rp = run_degradation(&perm);
        let rt = run_degradation(&tra);
        assert!(render_degradation(&perm, &rp).contains("failures: permanent"));
        assert!(
            render_degradation(&tra, &rt).contains("transient, exp MTTR = 0.25x nominal"),
            "the rendered header must name the repair model"
        );
        assert!(
            rt.iter().all(|r| r.summary.rejoins > 0),
            "every transient cell must observe reboots"
        );
        assert!(rp.iter().all(|r| r.summary.rejoins == 0));
        // The rejuvenation finding (EXPERIMENTS.md): at the harshest
        // rate, re-replication over rebooting processors completes
        // strictly more runs than under permanent fail-stop — reboots
        // turn a mostly-lost workload into a mostly-recovered one. (The
        // two sweeps draw different scenarios from the shared stream —
        // repair draws shift it — so this is an aggregate, not a
        // run-for-run, comparison.)
        let harshest = *QUICK_FACTORS.last().unwrap();
        let completed = |rows: &[DegradationRow]| {
            by_policy(rows, harshest, |p| *p == RecoveryPolicy::ReReplicate)
                .next()
                .unwrap()
                .summary
                .completed
        };
        assert!(
            completed(&rt) > completed(&rp),
            "reboots must rejuvenate re-replication at MTTF {harshest}: \
             {} vs {}",
            completed(&rt),
            completed(&rp)
        );
        // Deterministic like the permanent sweep.
        let again = run_degradation(&tra);
        assert_eq!(
            serde_json::to_string(&rt).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn checkpoint_beats_re_replicate_somewhere() {
        // The acceptance cell: at some (failure rate, interval), resuming
        // from checkpoints yields a better expected makespan than
        // recomputing from scratch — completing at least as many runs
        // with a strictly lower mean latency.
        let cfg = quick();
        let rows = run_degradation(&cfg);
        let mut found = false;
        for &factor in &QUICK_FACTORS {
            let rerep = by_policy(&rows, factor, |p| *p == RecoveryPolicy::ReReplicate)
                .next()
                .unwrap();
            for ck in by_policy(&rows, factor, |p| {
                matches!(p, RecoveryPolicy::Checkpoint { .. })
            }) {
                if ck.summary.completed >= rerep.summary.completed
                    && ck.summary.mean_latency < rerep.summary.mean_latency
                {
                    found = true;
                }
            }
        }
        assert!(
            found,
            "no (rate, interval) cell where checkpoint beats re-replicate:\n{}",
            render_degradation(&cfg, &rows)
        );
    }
}
