//! Degradation vs. failure rate: the online-runtime experiment.
//!
//! The paper's §6 crash experiments kill a fixed number of processors at
//! t = 0 and replay statically. The online engine in `ft-runtime` opens
//! the temporal axis: processors crash *during* execution with
//! exponential lifetimes, failures are detected after a latency, and a
//! recovery policy reacts. This experiment sweeps the failure rate (mean
//! time to failure as a multiple of the schedule's nominal latency) and
//! reports, per [`RecoveryPolicy`], the completion rate and the latency
//! degradation over a Monte-Carlo batch — the online analogue of the
//! figure panels (b)/(c).
//!
//! Since the checkpoint/restart PR the sweep is **four-way**: next to
//! `Absorb` / `ReReplicate` / `Reschedule` it runs one `Checkpoint`
//! policy per configured interval (intervals and the per-checkpoint
//! overhead are expressed as multiples of the instance's mean task cost,
//! so they track the workload's scale). `only_policy` restricts the
//! sweep to a single policy name — the `paper-figures degradation
//! --policy checkpoint` path.

use ft_algos::{caft, CommModel};
use ft_graph::gen::{random_layered, RandomDagParams};
use ft_platform::{random_instance, PlatformParams};
use ft_runtime::{
    simulate_many, BatchSummary, EngineConfig, LifetimeDist, MonteCarloConfig, RecoveryPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the degradation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Tasks in the workload.
    pub tasks: usize,
    /// Processors `m`.
    pub procs: usize,
    /// Supported failures ε of the static schedule.
    pub eps: usize,
    /// Granularity of the instance.
    pub granularity: f64,
    /// MTTF sweep, as multiples of the schedule's nominal latency
    /// (descending = increasing failure pressure).
    pub mttf_factors: Vec<f64>,
    /// Checkpoint intervals to sweep, as multiples of the instance's
    /// mean task cost (one `Checkpoint` policy per entry).
    pub checkpoint_intervals: Vec<f64>,
    /// Per-checkpoint overhead, as a multiple of the mean task cost.
    pub checkpoint_overhead: f64,
    /// Restrict the sweep to the policy with this
    /// [`name`](RecoveryPolicy::name) (e.g. `"checkpoint"`); `None` runs
    /// the full four-way comparison.
    pub only_policy: Option<String>,
    /// Monte-Carlo runs per (factor, policy) cell.
    pub runs: usize,
    /// Detection latency of the runtime.
    pub detection_latency: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            tasks: 60,
            procs: 10,
            eps: 1,
            granularity: 1.0,
            mttf_factors: vec![16.0, 8.0, 4.0, 2.0, 1.0],
            checkpoint_intervals: vec![0.25, 1.0],
            checkpoint_overhead: 0.005,
            only_policy: None,
            runs: 400,
            detection_latency: 1.0,
            seed: 0x5EED,
        }
    }
}

impl DegradationConfig {
    /// The policy roster of one sweep cell, in presentation order:
    /// the three parameterless baselines, then one `Checkpoint` per
    /// configured interval — filtered down when `only_policy` is set.
    pub fn policies(&self, mean_task_cost: f64) -> Vec<RecoveryPolicy> {
        let mut all: Vec<RecoveryPolicy> = RecoveryPolicy::ALL.to_vec();
        for &iv in &self.checkpoint_intervals {
            all.push(RecoveryPolicy::checkpoint(
                iv * mean_task_cost,
                self.checkpoint_overhead * mean_task_cost,
            ));
        }
        if let Some(name) = &self.only_policy {
            all.retain(|p| p.name() == name.as_str());
        }
        all
    }
}

/// One cell of the sweep: a policy at a failure rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationRow {
    /// MTTF as a multiple of the nominal latency.
    pub mttf_factor: f64,
    /// The Monte-Carlo aggregate for each policy at this rate.
    pub summary: BatchSummary,
}

/// Runs the sweep: one CAFT schedule, `|mttf_factors| × |policies|`
/// Monte-Carlo batches. Deterministic in the configuration; every policy
/// sees the **same** fault draws at a given rate (batch seeds depend only
/// on the rate), so cells in one rate group are run-for-run comparable.
pub fn run_degradation(cfg: &DegradationConfig) -> Vec<DegradationRow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let graph = random_layered(&RandomDagParams::default().with_tasks(cfg.tasks), &mut rng);
    let inst = random_instance(
        graph,
        &PlatformParams::default().with_procs(cfg.procs),
        cfg.granularity,
        &mut rng,
    );
    let sched = caft(&inst, cfg.eps, CommModel::OnePort, cfg.seed);
    let nominal = sched.latency();
    let policies = cfg.policies(inst.mean_task_cost());
    let mut rows = Vec::new();
    for &factor in &cfg.mttf_factors {
        for &policy in &policies {
            let mc = MonteCarloConfig {
                runs: cfg.runs,
                lifetime: LifetimeDist::Exponential {
                    mean: nominal * factor,
                },
                engine: EngineConfig {
                    policy,
                    detection_latency: cfg.detection_latency,
                    seed: cfg.seed,
                },
                seed: cfg.seed ^ factor.to_bits(),
            };
            rows.push(DegradationRow {
                mttf_factor: factor,
                summary: simulate_many(&inst, &sched, &mc),
            });
        }
    }
    rows
}

/// ASCII table of the sweep.
pub fn render_degradation(rows: &[DegradationRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "degradation vs. failure rate (exponential lifetimes; MTTF in units of the \
         nominal latency)\n",
    );
    out.push_str(
        "  MTTF   policy                completion   mean slowdown   recovered/run   \
         replicas/run   msgs/run   ck-paid/run   saved/run\n",
    );
    let mut last = f64::NAN;
    for row in rows {
        let s = &row.summary;
        if row.mttf_factor != last {
            out.push_str(&format!("  {:-<126}\n", ""));
            last = row.mttf_factor;
        }
        let runs = s.runs.max(1) as f64;
        out.push_str(&format!(
            "  {:>5.1}  {:<20}  {:>8.1}%   {:>12.3}   {:>13.2}   {:>12.2}   {:>8.2}   \
             {:>11.2}   {:>9.2}\n",
            row.mttf_factor,
            s.policy.label(),
            s.completion_rate() * 100.0,
            s.mean_slowdown,
            s.tasks_recovered as f64 / runs,
            s.recovery_replicas as f64 / runs,
            s.recovery_messages as f64 / runs,
            s.mean_checkpoint_overhead(),
            s.mean_work_saved(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_FACTORS: [f64; 3] = [8.0, 2.0, 1.0];

    fn quick() -> DegradationConfig {
        DegradationConfig {
            tasks: 25,
            procs: 6,
            runs: 40,
            mttf_factors: QUICK_FACTORS.to_vec(),
            ..Default::default()
        }
    }

    fn by_policy<'a>(
        rows: &'a [DegradationRow],
        factor: f64,
        pred: impl Fn(&RecoveryPolicy) -> bool + 'a,
    ) -> impl Iterator<Item = &'a DegradationRow> {
        rows.iter()
            .filter(move |r| r.mttf_factor == factor && pred(&r.summary.policy))
    }

    #[test]
    fn sweep_shape_and_determinism() {
        let cfg = quick();
        let rows = run_degradation(&cfg);
        // 3 baselines + one checkpoint policy per interval, per rate.
        assert_eq!(rows.len(), 3 * (3 + cfg.checkpoint_intervals.len()));
        let again = run_degradation(&cfg);
        assert_eq!(
            serde_json::to_string(&rows).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        let table = render_degradation(&rows);
        assert!(table.contains("re-replicate"));
        assert!(table.contains("ckpt τ="));
        assert!(table.contains("8.0"));
    }

    #[test]
    fn only_policy_restricts_the_roster() {
        let cfg = DegradationConfig {
            only_policy: Some("checkpoint".into()),
            ..quick()
        };
        let rows = run_degradation(&cfg);
        assert_eq!(rows.len(), 3 * cfg.checkpoint_intervals.len());
        assert!(rows
            .iter()
            .all(|r| matches!(r.summary.policy, RecoveryPolicy::Checkpoint { .. })));
    }

    #[test]
    fn recovery_never_completes_less() {
        let rows = run_degradation(&quick());
        for &factor in &QUICK_FACTORS {
            let absorb = by_policy(&rows, factor, |p| *p == RecoveryPolicy::Absorb)
                .next()
                .unwrap();
            for r in by_policy(&rows, factor, |p| *p != RecoveryPolicy::Absorb) {
                assert!(
                    r.summary.completed >= absorb.summary.completed,
                    "{} completed {} < absorb {} at MTTF {factor}",
                    r.summary.policy.label(),
                    r.summary.completed,
                    absorb.summary.completed
                );
            }
        }
    }

    #[test]
    fn harsher_rates_complete_no_more_under_absorb() {
        let rows = run_degradation(&quick());
        let absorb: Vec<_> = rows
            .iter()
            .filter(|r| r.summary.policy == RecoveryPolicy::Absorb)
            .collect();
        assert!(absorb[0].mttf_factor > absorb[1].mttf_factor);
        assert!(absorb[0].summary.completed >= absorb[1].summary.completed);
    }

    #[test]
    fn checkpoint_beats_re_replicate_somewhere() {
        // The acceptance cell: at some (failure rate, interval), resuming
        // from checkpoints yields a better expected makespan than
        // recomputing from scratch — completing at least as many runs
        // with a strictly lower mean latency.
        let rows = run_degradation(&quick());
        let mut found = false;
        for &factor in &QUICK_FACTORS {
            let rerep = by_policy(&rows, factor, |p| *p == RecoveryPolicy::ReReplicate)
                .next()
                .unwrap();
            for ck in by_policy(&rows, factor, |p| {
                matches!(p, RecoveryPolicy::Checkpoint { .. })
            }) {
                if ck.summary.completed >= rerep.summary.completed
                    && ck.summary.mean_latency < rerep.summary.mean_latency
                {
                    found = true;
                }
            }
        }
        assert!(
            found,
            "no (rate, interval) cell where checkpoint beats re-replicate:\n{}",
            render_degradation(&rows)
        );
    }
}
