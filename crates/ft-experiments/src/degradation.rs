//! Degradation vs. failure rate: the online-runtime experiment.
//!
//! The paper's §6 crash experiments kill a fixed number of processors at
//! t = 0 and replay statically. The online engine in `ft-runtime` opens
//! the temporal axis: processors crash *during* execution with
//! exponential lifetimes, failures are detected after a latency, and a
//! recovery policy reacts. This experiment sweeps the failure rate (mean
//! time to failure as a multiple of the schedule's nominal latency) and
//! reports, per [`RecoveryPolicy`], the completion rate and the latency
//! degradation over a Monte-Carlo batch — the online analogue of the
//! figure panels (b)/(c).

use ft_algos::{caft, CommModel};
use ft_graph::gen::{random_layered, RandomDagParams};
use ft_platform::{random_instance, PlatformParams};
use ft_runtime::{
    simulate_many, BatchSummary, EngineConfig, LifetimeDist, MonteCarloConfig, RecoveryPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the degradation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Tasks in the workload.
    pub tasks: usize,
    /// Processors `m`.
    pub procs: usize,
    /// Supported failures ε of the static schedule.
    pub eps: usize,
    /// Granularity of the instance.
    pub granularity: f64,
    /// MTTF sweep, as multiples of the schedule's nominal latency
    /// (descending = increasing failure pressure).
    pub mttf_factors: Vec<f64>,
    /// Monte-Carlo runs per (factor, policy) cell.
    pub runs: usize,
    /// Detection latency of the runtime.
    pub detection_latency: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            tasks: 60,
            procs: 10,
            eps: 1,
            granularity: 1.0,
            mttf_factors: vec![16.0, 8.0, 4.0, 2.0, 1.0],
            runs: 400,
            detection_latency: 1.0,
            seed: 0x5EED,
        }
    }
}

/// One cell of the sweep: a policy at a failure rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationRow {
    /// MTTF as a multiple of the nominal latency.
    pub mttf_factor: f64,
    /// The Monte-Carlo aggregate for each policy at this rate.
    pub summary: BatchSummary,
}

/// Runs the sweep: one CAFT schedule, `|mttf_factors| × 3` Monte-Carlo
/// batches. Deterministic in the configuration.
pub fn run_degradation(cfg: &DegradationConfig) -> Vec<DegradationRow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let graph = random_layered(&RandomDagParams::default().with_tasks(cfg.tasks), &mut rng);
    let inst = random_instance(
        graph,
        &PlatformParams::default().with_procs(cfg.procs),
        cfg.granularity,
        &mut rng,
    );
    let sched = caft(&inst, cfg.eps, CommModel::OnePort, cfg.seed);
    let nominal = sched.latency();
    let mut rows = Vec::new();
    for &factor in &cfg.mttf_factors {
        for policy in RecoveryPolicy::ALL {
            let mc = MonteCarloConfig {
                runs: cfg.runs,
                lifetime: LifetimeDist::Exponential {
                    mean: nominal * factor,
                },
                engine: EngineConfig {
                    policy,
                    detection_latency: cfg.detection_latency,
                    seed: cfg.seed,
                },
                seed: cfg.seed ^ factor.to_bits(),
            };
            rows.push(DegradationRow {
                mttf_factor: factor,
                summary: simulate_many(&inst, &sched, &mc),
            });
        }
    }
    rows
}

/// ASCII table of the sweep.
pub fn render_degradation(rows: &[DegradationRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "degradation vs. failure rate (exponential lifetimes; MTTF in units of the \
         nominal latency)\n",
    );
    out.push_str(
        "  MTTF   policy        completion   mean slowdown   recovered/run   \
         replicas/run   msgs/run\n",
    );
    let mut last = f64::NAN;
    for row in rows {
        let s = &row.summary;
        if row.mttf_factor != last {
            out.push_str(&format!("  {:-<90}\n", ""));
            last = row.mttf_factor;
        }
        let runs = s.runs.max(1) as f64;
        out.push_str(&format!(
            "  {:>5.1}  {:<12}  {:>8.1}%   {:>12.3}   {:>13.2}   {:>12.2}   {:>8.2}\n",
            row.mttf_factor,
            s.policy.name(),
            s.completion_rate() * 100.0,
            s.mean_slowdown,
            s.tasks_recovered as f64 / runs,
            s.recovery_replicas as f64 / runs,
            s.recovery_messages as f64 / runs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DegradationConfig {
        DegradationConfig {
            tasks: 25,
            procs: 6,
            runs: 40,
            mttf_factors: vec![8.0, 2.0],
            ..Default::default()
        }
    }

    #[test]
    fn sweep_shape_and_determinism() {
        let rows = run_degradation(&quick());
        assert_eq!(rows.len(), 2 * 3);
        let again = run_degradation(&quick());
        assert_eq!(
            serde_json::to_string(&rows).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        let table = render_degradation(&rows);
        assert!(table.contains("re-replicate"));
        assert!(table.contains("8.0"));
    }

    #[test]
    fn recovery_never_completes_less() {
        let rows = run_degradation(&quick());
        for chunk in rows.chunks(3) {
            let [absorb, rerep, resched] = chunk else {
                panic!("3 policies")
            };
            assert!(rerep.summary.completed >= absorb.summary.completed);
            assert!(resched.summary.completed >= absorb.summary.completed);
        }
    }

    #[test]
    fn harsher_rates_complete_no_more_under_absorb() {
        let rows = run_degradation(&quick());
        let absorb: Vec<_> = rows
            .iter()
            .filter(|r| r.summary.policy == RecoveryPolicy::Absorb)
            .collect();
        assert!(absorb[0].mttf_factor > absorb[1].mttf_factor);
        assert!(absorb[0].summary.completed >= absorb[1].summary.completed);
    }
}
