//! `paper-figures` — regenerate the paper's evaluation from the command
//! line.
//!
//! ```text
//! paper-figures all                 # figures 1-6 + messages + resilience
//! paper-figures fig3                # one figure
//! paper-figures messages            # Prop. 5.1 message counts
//! paper-figures resilience          # Prop. 5.2 failure injection
//! paper-figures degradation         # online runtime: completion vs MTTF
//! paper-figures degradation --policy checkpoint   # one policy only
//! paper-figures degradation --policy adaptive-checkpoint  # Young/Daly
//!                                   # per-rate intervals (and warm-spare
//!                                   # via --policy warm-spare)
//! paper-figures degradation --detection gossip    # detection-model axis
//!                                   # (uniform | per-proc | gossip)
//! paper-figures degradation --ck-interval 0.25 --ck-interval 1 \
//!               --ck-overhead 0.005 # checkpoint sweep knobs (× mean task cost)
//! paper-figures degradation --transient            # rebooting processors
//!                                   # (exp repairs, MTTR 0.25 × nominal)
//! paper-figures degradation --mttr 0.5             # …with an explicit MTTR
//!                                   # (× nominal latency; implies --transient)
//! paper-figures storm               # recovery storms under link contention
//!                                   # (Beneš interconnect; the `network`
//!                                   # validation family's experiment)
//! paper-figures fig1 --quick        # thinned sweep, 10 graphs/point
//! paper-figures fig1 --graphs 20    # override graphs per point
//! paper-figures all --json out.json # machine-readable dump
//! paper-figures degradation --metrics-json metrics.json
//!                                   # per-cell mergeable metric histograms
//!                                   # (latency / slowdown / work lost &
//!                                   # saved / detection lag + counters)
//! paper-figures validate --quick    # evaluate every committed
//!                                   # VALIDATION_<family>.json (exit 1 on
//!                                   # any FAILED claim)
//! paper-figures validate --family grid --quick     # one family
//! paper-figures validate --quick --bless           # re-target the records
//! paper-figures validate --quick --out dir/        # write refreshed
//!                                   # records elsewhere (CI artifacts)
//! paper-figures validate --records validation/full # full-resolution lane:
//!                                   # load + bless records under a
//!                                   # different directory
//! ```

use ft_experiments::degradation::{
    render_degradation, run_degradation, DegradationConfig, DetectionKind,
};
use ft_experiments::figures::{by_id, figure_configs};
use ft_experiments::messages::run_messages;
use ft_experiments::resilience_exp::run_resilience;
use ft_experiments::runner::{run_figure, FigureResult};
use ft_experiments::table::{render_figure, render_messages, render_resilience};
use ft_experiments::validate::{
    self, bless, committed_dir, load_family, render, save_family, validate_family, FAMILIES,
};
use ft_experiments::{render_isoclines, render_storm, run_grid, run_storm};

#[derive(serde::Serialize)]
struct Dump {
    figures: Vec<FigureResult>,
    messages: Vec<ft_experiments::messages::MessageRow>,
    resilience: Vec<ft_experiments::resilience_exp::ResilienceRow>,
    degradation: Vec<ft_experiments::degradation::DegradationRow>,
    storm: Vec<ft_experiments::StormRow>,
}

/// The `validate` subcommand: evaluate each family's committed
/// `VALIDATION_<family>.json`, print the claim tables (plus the
/// completion isoclines for the grid), optionally re-target the records
/// (`--bless`) or write the refreshed records elsewhere (`--out`, the CI
/// artifact path), and exit 1 when any claim FAILED.
///
/// `--records DIR` points both loading and blessing at a different
/// record set — the full-resolution lane keeps its records under
/// `validation/full/` so the quick (tier-1) and full (weekly) lanes
/// never overwrite each other's targets.
fn run_validate(args: &[String], quick: bool) {
    let family_filter: Option<String> = args
        .iter()
        .position(|a| a == "--family")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(f) = &family_filter {
        if !FAMILIES.contains(&f.as_str()) {
            eprintln!(
                "unknown validation family '{f}' — expected one of {}",
                FAMILIES.join(", ")
            );
            std::process::exit(2);
        }
    }
    let do_bless = args.iter().any(|a| a == "--bless");
    let out_dir: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let dir = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(committed_dir);
    let mut all_passed = true;
    for fam in FAMILIES
        .iter()
        .filter(|f| family_filter.as_deref().is_none_or(|ff| ff == **f))
    {
        let committed = load_family(&dir, fam);
        match &committed {
            None => eprintln!("note: no committed record for '{fam}' yet (run with --bless)"),
            Some(c) if c.quick != quick => eprintln!(
                "warning: committed '{fam}' record holds {} targets but this run uses {} \
                 dimensions — errors reflect the dimension change, not a regression",
                if c.quick { "quick" } else { "full" },
                if quick { "quick" } else { "full" },
            ),
            Some(_) => {}
        }
        let record = if *fam == "grid" {
            let res = run_grid(&validate::grid_config(quick));
            println!("{}", render_isoclines(&res));
            validate::validate_grid_result(&res, quick, committed.as_ref())
        } else {
            validate_family(fam, quick, committed.as_ref())
        };
        let record = if do_bless { bless(record) } else { record };
        println!("{}", render(&record));
        if do_bless {
            save_family(&dir, &record).expect("writable validation directory");
            eprintln!("blessed {}", validate::family_path(&dir, fam).display());
        }
        if let Some(out) = &out_dir {
            let out = std::path::Path::new(out);
            save_family(out, &record).expect("writable --out directory");
            eprintln!("wrote {}", validate::family_path(out, fam).display());
        }
        all_passed &= record.passed();
    }
    if !all_passed {
        eprintln!("validation FAILED — see the claim tables above");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let quick = args.iter().any(|a| a == "--quick");
    let graphs: Option<usize> = args
        .iter()
        .position(|a| a == "--graphs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let json_path: Option<String> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_path: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let only_policy: Option<String> = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(p) = &only_policy {
        let known = [
            "absorb",
            "re-replicate",
            "reschedule",
            "warm-spare",
            "checkpoint",
            "adaptive-checkpoint",
        ];
        if !known.contains(&p.as_str()) {
            eprintln!(
                "unknown policy '{p}' — expected one of {}",
                known.join(", ")
            );
            std::process::exit(2);
        }
    }
    let detection: Option<DetectionKind> = args.iter().position(|a| a == "--detection").map(|i| {
        let raw = args.get(i + 1).map(String::as_str).unwrap_or("");
        DetectionKind::parse(raw).unwrap_or_else(|| {
            eprintln!("unknown detection model '{raw}' — expected uniform, per-proc or gossip");
            std::process::exit(2);
        })
    });
    let parse_positive = |flag: &str, s: Option<&String>, allow_zero: bool| -> f64 {
        let raw = s.unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        match raw.parse::<f64>() {
            Ok(v) if v.is_finite() && (v > 0.0 || (allow_zero && v == 0.0)) => v,
            _ => {
                let bound = if allow_zero { "≥ 0" } else { "> 0" };
                eprintln!("bad {flag} value '{raw}' — expected a finite number {bound}");
                std::process::exit(2);
            }
        }
    };
    let ck_intervals: Vec<f64> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--ck-interval")
        .map(|(i, _)| parse_positive("--ck-interval", args.get(i + 1), false))
        .collect();
    let ck_overhead: Option<f64> = args
        .iter()
        .position(|a| a == "--ck-overhead")
        .map(|i| parse_positive("--ck-overhead", args.get(i + 1), true));
    let mttr: Option<f64> = args
        .iter()
        .position(|a| a == "--mttr")
        .map(|i| parse_positive("--mttr", args.get(i + 1), false));
    let transient = mttr.is_some() || args.iter().any(|a| a == "--transient");

    let tune = |mut cfg: ft_experiments::FigureConfig| {
        if quick {
            cfg = cfg.quick(10);
        }
        if let Some(g) = graphs {
            cfg.graphs_per_point = g;
        }
        cfg
    };

    let mut dump = Dump {
        figures: Vec::new(),
        messages: Vec::new(),
        resilience: Vec::new(),
        degradation: Vec::new(),
        storm: Vec::new(),
    };
    let msg_graphs = if quick { 5 } else { 20 };
    let res_graphs = if quick { 2 } else { 10 };
    let mut deg_cfg = DegradationConfig {
        runs: if quick { 60 } else { 400 },
        only_policy,
        ..DegradationConfig::default()
    };
    if !ck_intervals.is_empty() {
        deg_cfg.checkpoint_intervals = ck_intervals;
    }
    if let Some(ov) = ck_overhead {
        deg_cfg.checkpoint_overhead = ov;
    }
    if let Some(kind) = detection {
        deg_cfg.detection = kind;
    }
    if transient {
        deg_cfg.mttr_factor = Some(mttr.unwrap_or(0.25));
    }

    match what.as_str() {
        "all" => {
            for cfg in figure_configs() {
                let res = run_figure(&tune(cfg));
                println!("{}", render_figure(&res));
                dump.figures.push(res);
            }
            dump.messages = run_messages(msg_graphs, 0x5EED);
            println!("{}", render_messages(&dump.messages));
            dump.resilience = run_resilience(res_graphs, 0x5EED);
            println!("{}", render_resilience(&dump.resilience));
            dump.degradation = run_degradation(&deg_cfg);
            println!("{}", render_degradation(&deg_cfg, &dump.degradation));
        }
        "messages" => {
            dump.messages = run_messages(msg_graphs, 0x5EED);
            println!("{}", render_messages(&dump.messages));
        }
        "resilience" => {
            dump.resilience = run_resilience(res_graphs, 0x5EED);
            println!("{}", render_resilience(&dump.resilience));
        }
        "degradation" => {
            dump.degradation = run_degradation(&deg_cfg);
            println!("{}", render_degradation(&deg_cfg, &dump.degradation));
        }
        "storm" => {
            let storm_cfg = ft_experiments::validate::storm_config(quick);
            dump.storm = run_storm(&storm_cfg);
            println!("{}", render_storm(&storm_cfg, &dump.storm));
        }
        "validate" => {
            run_validate(&args, quick);
        }
        id => match by_id(id) {
            Some(cfg) => {
                let res = run_figure(&tune(cfg));
                println!("{}", render_figure(&res));
                dump.figures.push(res);
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}' — expected fig1..fig6, messages, \
                     resilience, degradation, storm, validate or all"
                );
                std::process::exit(2);
            }
        },
    }

    if let Some(path) = json_path {
        let txt = serde_json::to_string_pretty(&dump).expect("serializable results");
        std::fs::write(&path, txt).expect("writable json path");
        eprintln!("wrote {path}");
    }

    // The observability dump: one record per Monte-Carlo cell with the
    // mergeable metric histograms (byte-identical at any thread count).
    if let Some(path) = metrics_path {
        use serde::{Serialize, Value};
        if dump.degradation.is_empty() {
            eprintln!("--metrics-json: no Monte-Carlo cells were run (use `degradation` or `all`)");
        }
        let records: Vec<Value> = dump
            .degradation
            .iter()
            .map(|row| {
                Value::Map(vec![
                    (
                        "policy".to_string(),
                        Value::Str(row.summary.policy_label.clone()),
                    ),
                    ("mttf_factor".to_string(), Value::Float(row.mttf_factor)),
                    ("runs".to_string(), Value::UInt(row.summary.runs as u64)),
                    ("metrics".to_string(), row.summary.metrics.to_value()),
                ])
            })
            .collect();
        let txt = serde_json::to_string_pretty(&Value::Seq(records)).expect("serializable metrics");
        std::fs::write(&path, txt).expect("writable metrics path");
        eprintln!("wrote {path}");
    }
}
