//! The Proposition 5.2 experiment: operational resilience of each
//! algorithm's schedules under exhaustive failure injection.
//!
//! For each algorithm and ε, schedules random §6 workloads, then replays
//! them under *every* failure pattern of size ≤ ε:
//!
//! * **strict** replay (fail-silent, no runtime re-routing): the fraction
//!   of patterns under which every task still completes. FTSA is provably
//!   100% here (full fan-in); CAFT's one-to-one chains can starve
//!   transitively — this column measures the gap between the paper's
//!   Proposition 5.2 and the algorithm as specified (see EXPERIMENTS.md);
//! * **fail-over** replay (a surviving predecessor replica re-sends): all
//!   algorithms reach 100%, which is the execution model implicit in the
//!   paper's crash-latency figures.

use ft_algos::{caft, caft_hardened, ftbar, ftsa, CommModel};
use ft_graph::gen::{random_layered, RandomDagParams};
use ft_model::FtSchedule;
use ft_platform::{random_instance, Instance, PlatformParams, ProcId};
use ft_sim::{replay_with, FaultScenario, ReplayConfig, ReplayPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One row of the resilience experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Algorithm name.
    pub algo: String,
    /// Failures supported ε.
    pub eps: usize,
    /// Failure patterns evaluated (all subsets of size ≤ ε, over all graphs).
    pub patterns: usize,
    /// Completion rate under strict replay.
    pub strict_rate: f64,
    /// Completion rate with runtime fail-over.
    pub failover_rate: f64,
}

fn completion_rates(inst: &Instance, sched: &FtSchedule, eps: usize) -> (usize, usize, usize) {
    let m = inst.num_procs();
    let mut total = 0usize;
    let mut strict_ok = 0usize;
    let mut failover_ok = 0usize;
    // All subsets of size 1..=eps.
    let mut stack: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
    while let Some(subset) = stack.pop() {
        let procs: Vec<ProcId> = subset.iter().map(|&i| ProcId::from_index(i)).collect();
        let sc = FaultScenario::procs(&procs);
        total += 1;
        let strict = replay_with(
            inst,
            sched,
            &sc,
            ReplayConfig {
                policy: ReplayPolicy::FirstCopy,
                reroute: false,
            },
        );
        if strict.completed() {
            strict_ok += 1;
        }
        let failover = replay_with(
            inst,
            sched,
            &sc,
            ReplayConfig {
                policy: ReplayPolicy::FirstCopy,
                reroute: true,
            },
        );
        if failover.completed() {
            failover_ok += 1;
        }
        if subset.len() < eps {
            let last = *subset.last().unwrap();
            for next in (last + 1)..m {
                let mut bigger = subset.clone();
                bigger.push(next);
                stack.push(bigger);
            }
        }
    }
    (total, strict_ok, failover_ok)
}

/// Runs the resilience experiment over `graphs` random instances per ε.
pub fn run_resilience(graphs: usize, seed: u64) -> Vec<ResilienceRow> {
    let mut rows = Vec::new();
    for eps in [1usize, 2] {
        let mut tallies: Vec<(String, usize, usize, usize)> = vec![
            ("CAFT".into(), 0, 0, 0),
            ("CAFT-H".into(), 0, 0, 0),
            ("FTSA".into(), 0, 0, 0),
            ("FTBAR".into(), 0, 0, 0),
        ];
        for gi in 0..graphs {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(gi as u64 * 104_729));
            let g = random_layered(&RandomDagParams::default().with_tasks(60), &mut rng);
            let inst = random_instance(g, &PlatformParams::default(), 1.0, &mut rng);
            let model = CommModel::OnePort;
            let scheds = [
                caft(&inst, eps, model, seed),
                caft_hardened(&inst, eps, model, seed),
                ftsa(&inst, eps, model, seed),
                ftbar(&inst, eps, model, seed),
            ];
            for (i, sched) in scheds.iter().enumerate() {
                let (t, s, f) = completion_rates(&inst, sched, eps);
                tallies[i].1 += t;
                tallies[i].2 += s;
                tallies[i].3 += f;
            }
        }
        for (name, total, strict, failover) in tallies {
            rows.push(ResilienceRow {
                algo: name,
                eps,
                patterns: total,
                strict_rate: strict as f64 / total as f64,
                failover_rate: failover as f64 / total as f64,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftsa_is_fully_resilient_and_failover_restores_everyone() {
        let rows = run_resilience(1, 3);
        for r in &rows {
            assert!(r.patterns > 0);
            assert!(
                (r.failover_rate - 1.0).abs() < 1e-12,
                "{} ε={} fail-over rate {}",
                r.algo,
                r.eps,
                r.failover_rate
            );
            if r.algo == "FTSA" || r.algo == "CAFT-H" {
                assert!(
                    (r.strict_rate - 1.0).abs() < 1e-12,
                    "{} ε={} strict rate {}",
                    r.algo,
                    r.eps,
                    r.strict_rate
                );
            }
        }
    }
}
