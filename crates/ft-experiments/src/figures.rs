//! The six paper figures as ready-made configurations.

use crate::config::{sweep_a, sweep_b, FigureConfig};

/// Figure 1: type A granularity, m = 10, ε = 1, 1 crash.
pub fn fig1() -> FigureConfig {
    FigureConfig::new("fig1", sweep_a(), 10, 1, 1)
}

/// Figure 2: type A granularity, m = 10, ε = 3, 2 crashes.
pub fn fig2() -> FigureConfig {
    FigureConfig::new("fig2", sweep_a(), 10, 3, 2)
}

/// Figure 3: type A granularity, m = 20, ε = 5, 3 crashes.
pub fn fig3() -> FigureConfig {
    FigureConfig::new("fig3", sweep_a(), 20, 5, 3)
}

/// Figure 4: type B granularity, m = 10, ε = 1, 1 crash.
pub fn fig4() -> FigureConfig {
    FigureConfig::new("fig4", sweep_b(), 10, 1, 1)
}

/// Figure 5: type B granularity, m = 10, ε = 3, 2 crashes.
pub fn fig5() -> FigureConfig {
    FigureConfig::new("fig5", sweep_b(), 10, 3, 2)
}

/// Figure 6: type B granularity, m = 20, ε = 5, 3 crashes.
pub fn fig6() -> FigureConfig {
    FigureConfig::new("fig6", sweep_b(), 20, 5, 3)
}

/// Every figure configuration, in paper order.
pub fn figure_configs() -> Vec<FigureConfig> {
    vec![fig1(), fig2(), fig3(), fig4(), fig5(), fig6()]
}

/// Looks a configuration up by id.
pub fn by_id(id: &str) -> Option<FigureConfig> {
    figure_configs().into_iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_figures_with_paper_parameters() {
        let all = figure_configs();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].procs, 10);
        assert_eq!(all[0].eps, 1);
        assert_eq!(all[2].procs, 20);
        assert_eq!(all[2].eps, 5);
        assert_eq!(all[2].crashes, 3);
        assert_eq!(
            all[3].granularities,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        );
        assert!(all.iter().all(|c| c.graphs_per_point == 60));
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig5").is_some());
        assert!(by_id("fig9").is_none());
    }
}
