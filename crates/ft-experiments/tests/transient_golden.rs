//! Golden-file regression test for the *transient* degradation table:
//! the same quick dimensions as `degradation_golden`, with exponential
//! repairs of mean `0.25 ×` nominal — the rejuvenation sweep. The
//! permanent golden pins the fail-stop aggregates; this one pins the
//! reboot path (rejoin counts, warm-spare pre-staging payouts) that the
//! permanent sweep never exercises.
//!
//! To bless an intentional change, regenerate the file:
//!
//! ```text
//! BLESS_TRANSIENT_GOLDEN=1 cargo test -p ft-experiments --test transient_golden
//! ```

use ft_experiments::degradation::{render_degradation, run_degradation, DegradationConfig};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/transient_golden.txt");

/// The pinned configuration: the permanent golden's dimensions plus the
/// `--transient` axis (MTTR `0.25 ×` nominal).
fn golden_config() -> DegradationConfig {
    DegradationConfig {
        tasks: 25,
        procs: 6,
        runs: 40,
        mttf_factors: vec![8.0, 2.0, 1.0],
        mttr_factor: Some(0.25),
        ..Default::default()
    }
}

#[test]
fn rendered_transient_table_matches_the_golden_file() {
    let cfg = golden_config();
    let rows = run_degradation(&cfg);
    let table = render_degradation(&cfg, &rows);
    assert!(
        table.contains("transient, exp MTTR = 0.25x nominal"),
        "the rendered header must name the repair model"
    );
    if std::env::var("BLESS_TRANSIENT_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &table).expect("writable golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing golden file — run with BLESS_TRANSIENT_GOLDEN=1 to generate it");
    assert!(
        table == golden,
        "transient degradation table drifted from the golden file.\n\
         If the change is intentional, bless it with \
         BLESS_TRANSIENT_GOLDEN=1.\n\n--- golden ---\n{golden}\n--- rendered ---\n{table}"
    );
}
