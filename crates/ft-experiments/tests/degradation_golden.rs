//! Golden-file regression test for the degradation sweep's rendered
//! table: uniform detection, fixed seed, quick dimensions. Formatting or
//! aggregation drift — a changed column, a shifted mean, a renamed label
//! — fails loudly here instead of silently shifting the EXPERIMENTS.md
//! numbers.
//!
//! To bless an intentional change, regenerate the file:
//!
//! ```text
//! BLESS_DEGRADATION_GOLDEN=1 cargo test -p ft-experiments --test degradation_golden
//! ```

use ft_experiments::degradation::{render_degradation, run_degradation, DegradationConfig};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/degradation_golden.txt");

/// The pinned configuration: quick dimensions, uniform detection, the
/// default seed, permanent failures.
fn golden_config() -> DegradationConfig {
    DegradationConfig {
        tasks: 25,
        procs: 6,
        runs: 40,
        mttf_factors: vec![8.0, 2.0, 1.0],
        ..Default::default()
    }
}

#[test]
fn rendered_table_matches_the_golden_file() {
    let cfg = golden_config();
    let rows = run_degradation(&cfg);
    let table = render_degradation(&cfg, &rows);
    if std::env::var("BLESS_DEGRADATION_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &table).expect("writable golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing golden file — run with BLESS_DEGRADATION_GOLDEN=1 to generate it");
    assert!(
        table == golden,
        "degradation table drifted from the golden file.\n\
         If the change is intentional, bless it with \
         BLESS_DEGRADATION_GOLDEN=1.\n\n--- golden ---\n{golden}\n--- rendered ---\n{table}"
    );
}
